#include "pragma/amr/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

namespace pragma::amr {

SyntheticAppGenerator::SyntheticAppGenerator(SyntheticConfig config)
    : config_(config), rng_(config.seed) {
  const IntVec3 slots = slot_grid();
  const int capacity = slots.x * slots.y * slots.z;
  if (config_.box_count < 1 || config_.box_count > capacity)
    throw std::invalid_argument(
        "SyntheticAppGenerator: box_count exceeds slot capacity");
  place_initial();
}

IntVec3 SyntheticAppGenerator::slot_grid() const {
  const IntVec3 l1 = config_.base_dims * config_.ratio;
  if (l1.x % config_.box_edge || l1.y % config_.box_edge ||
      l1.z % config_.box_edge)
    throw std::invalid_argument(
        "SyntheticAppGenerator: box_edge must divide the level-1 domain");
  return {l1.x / config_.box_edge, l1.y / config_.box_edge,
          l1.z / config_.box_edge};
}

void SyntheticAppGenerator::place_initial() {
  const IntVec3 slots = slot_grid();
  const int capacity = slots.x * slots.y * slots.z;
  std::vector<int> all(capacity);
  for (int i = 0; i < capacity; ++i) all[i] = i;
  // Partial Fisher-Yates: the first box_count entries become the slots.
  for (int i = 0; i < config_.box_count; ++i) {
    const auto j = static_cast<int>(
        rng_.uniform_int(i, static_cast<std::int64_t>(capacity) - 1));
    std::swap(all[i], all[j]);
  }
  occupied_slots_.assign(all.begin(), all.begin() + config_.box_count);
}

void SyntheticAppGenerator::move_some() {
  const IntVec3 slots = slot_grid();
  const int capacity = slots.x * slots.y * slots.z;
  for (int& slot : occupied_slots_) {
    if (!rng_.bernoulli(config_.move_fraction)) continue;
    // Relocate to a random free slot.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto candidate = static_cast<int>(
          rng_.uniform_int(0, static_cast<std::int64_t>(capacity) - 1));
      if (std::find(occupied_slots_.begin(), occupied_slots_.end(),
                    candidate) == occupied_slots_.end()) {
        slot = candidate;
        break;
      }
    }
  }
}

GridHierarchy SyntheticAppGenerator::build_hierarchy() const {
  GridHierarchy hierarchy(config_.base_dims, config_.ratio,
                          config_.max_levels);
  const IntVec3 slots = slot_grid();
  std::vector<Box> level1;
  std::vector<Box> level2;
  for (int slot : occupied_slots_) {
    const int sx = slot % slots.x;
    const int sy = (slot / slots.x) % slots.y;
    const int sz = slot / (slots.x * slots.y);
    const Box box({sx * config_.box_edge, sy * config_.box_edge,
                   sz * config_.box_edge},
                  {(sx + 1) * config_.box_edge, (sy + 1) * config_.box_edge,
                   (sz + 1) * config_.box_edge});
    level1.push_back(box);
    if (config_.with_level2 && config_.max_levels > 2) {
      // Inner core, at least one cell, refined to level 2.
      const int margin = std::max(1, config_.box_edge / 4);
      const Box core = box.grow(-margin);
      if (!core.empty()) level2.push_back(core.refine(config_.ratio));
    }
  }
  hierarchy.set_level_boxes(1, std::move(level1));
  if (!level2.empty()) hierarchy.set_level_boxes(2, std::move(level2));
  return hierarchy;
}

AdaptationTrace SyntheticAppGenerator::generate(int snapshots,
                                                int step_stride) {
  AdaptationTrace trace;
  for (int s = 0; s < snapshots; ++s) {
    if (s > 0) move_some();
    trace.add(Snapshot{s * step_stride, build_hierarchy()});
  }
  return trace;
}

}  // namespace pragma::amr
