// Galaxy-formation emulator: hierarchical merging.
//
// The paper's driving applications include "formations of galaxies":
// "Galaxies are believed to have formed hierarchically; objects of
//  progressively larger mass merge and collapse to form new systems."
//
// This emulator reproduces that structural phenomenology: a population of
// clumps attracts gravitationally, pairs merge on contact, and refinement
// tracks clump density — so the adaptation trace starts scattered and
// highly dynamic (many small moving clumps) and ends localized and quiet
// (a few massive systems), traversing the octant space in the opposite
// direction to the RM3D shock problem.  Like the RM3D emulator, it feeds
// real flag fields through the Berger–Rigoutsos clusterer.
#pragma once

#include "pragma/amr/cluster_br.hpp"
#include "pragma/amr/hierarchy.hpp"
#include "pragma/amr/trace.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::amr {

struct GalaxyConfig {
  IntVec3 base_dims{64, 64, 64};
  int max_levels = 3;
  int ratio = 2;
  int regrid_interval = 4;
  int coarse_steps = 400;
  /// Initial clump population.
  int clumps = 48;
  /// Gravitational strength (normalized units per step^2).
  double gravity = 2.0e-5;
  /// Merge distance as a multiple of the summed clump radii.
  double merge_factor = 0.8;
  std::uint64_t seed = 17;
  std::vector<double> thresholds{1.0, 2.0};
  ClusterOptions cluster{/*efficiency=*/0.6, /*min_width=*/4,
                         /*max_box_cells=*/65536, /*max_depth=*/64};
};

struct Clump {
  double x = 0.5, y = 0.5, z = 0.5;   ///< normalized position
  double vx = 0.0, vy = 0.0, vz = 0.0;
  double mass = 1.0;
  [[nodiscard]] double radius() const;   ///< normalized, ~mass^(1/3)
  [[nodiscard]] double density() const;  ///< indicator strength
};

class GalaxyEmulator {
 public:
  explicit GalaxyEmulator(GalaxyConfig config = {});

  [[nodiscard]] const GalaxyConfig& config() const { return config_; }
  [[nodiscard]] int step() const { return step_; }
  [[nodiscard]] const GridHierarchy& hierarchy() const { return hierarchy_; }
  [[nodiscard]] const std::vector<Clump>& clumps() const { return clumps_; }
  [[nodiscard]] double total_mass() const;

  /// Advance one coarse step (gravity + merging); regrids (returning true)
  /// on the regrid interval.
  bool advance();
  void regrid();

  /// Run the whole simulation, one snapshot per regrid.
  [[nodiscard]] AdaptationTrace run();

  /// Refinement indicator at a normalized position.
  [[nodiscard]] double indicator(double x, double y, double z) const;

 private:
  [[nodiscard]] std::vector<Box> flag_and_cluster(int level);

  GalaxyConfig config_;
  GridHierarchy hierarchy_;
  std::vector<Clump> clumps_;
  int step_ = 0;
};

}  // namespace pragma::amr
