// Synthetic adaptation traces with controlled structural properties.
//
// The octant classifier and the partitioner suite are evaluated not only
// on the RM3D emulator but on traces whose scatter (number of refined
// regions), dynamics (fraction of regions moving per snapshot) and
// communication character (region size, hence surface-to-volume) are dialed
// in directly.  Regions live on a slot lattice so they stay disjoint by
// construction.
#pragma once

#include "pragma/amr/trace.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::amr {

struct SyntheticConfig {
  IntVec3 base_dims{64, 32, 32};
  int max_levels = 3;
  int ratio = 2;
  /// Number of refined regions (scatter axis: 1 = fully localized).
  int box_count = 8;
  /// Region edge in level-1 index space; must divide the level-1 domain on
  /// every axis (communication axis: small regions = high surface/volume).
  int box_edge = 8;
  /// Fraction of regions relocated between consecutive snapshots
  /// (dynamics axis: 0 = static refinement).
  double move_fraction = 0.2;
  /// Refine the inner core of each region to level 2.
  bool with_level2 = true;
  std::uint64_t seed = 1;
};

class SyntheticAppGenerator {
 public:
  explicit SyntheticAppGenerator(SyntheticConfig config);

  /// Produce a trace of `snapshots` snapshots, `step_stride` coarse steps
  /// apart.
  [[nodiscard]] AdaptationTrace generate(int snapshots, int step_stride = 4);

  /// The hierarchy for the current region placement.
  [[nodiscard]] GridHierarchy build_hierarchy() const;

  [[nodiscard]] const SyntheticConfig& config() const { return config_; }

 private:
  [[nodiscard]] IntVec3 slot_grid() const;
  void place_initial();
  void move_some();

  SyntheticConfig config_;
  util::Rng rng_;
  std::vector<int> occupied_slots_;  // linear slot index per region
};

}  // namespace pragma::amr
