// Hierarchy deltas: the structural difference between two SAMR snapshots.
//
// Most regrids move a small fraction of the hierarchy's boxes, so the
// runtime-management loop (characterize -> repartition) should pay in
// proportion to *change*, not to hierarchy size.  A HierarchyDelta records,
// per level, exactly which boxes disappeared and which appeared between two
// GridHierarchy snapshots (a resized or moved box is one removal plus one
// addition).  Consumers — WorkGrid::apply_delta and the incremental
// communication-volume tracker — then touch only the grain cells those
// boxes cover.  Deltas can be computed by diffing two snapshots
// (diff_hierarchies, AdaptationTrace::delta) or emitted directly by an AMR
// driver that already knows what it changed.
#pragma once

#include <cstddef>
#include <vector>

#include "pragma/amr/hierarchy.hpp"

namespace pragma::amr {

/// Box changes of one refinement level, in that level's index space.
struct LevelDelta {
  int level = 0;
  std::vector<Box> removed;  ///< in `before` but not in `after`
  std::vector<Box> added;    ///< in `after` but not in `before`
};

struct HierarchyDelta {
  /// Static configuration both snapshots must share for the delta to be
  /// applicable to a rasterized view.  `compatible` is false when the base
  /// domain or refinement ratio changed — consumers must rebuild.
  IntVec3 base_dims{0, 0, 0};
  int ratio = 2;
  bool compatible = true;

  int before_levels = 0;
  int after_levels = 0;
  /// Only levels with at least one change appear here, ascending by level.
  std::vector<LevelDelta> levels;

  std::size_t boxes_before = 0;
  std::size_t boxes_after = 0;

  [[nodiscard]] bool empty() const { return levels.empty(); }
  /// Total boxes added plus removed across levels.
  [[nodiscard]] std::size_t changed_boxes() const;
  /// Changed boxes over the union box population of the two snapshots:
  /// 0 = identical hierarchies, ~2 = complete turnover.  The incremental
  /// consumers fall back to a full rebuild above a churn threshold.
  [[nodiscard]] double churn() const;
  /// The inverse delta (after -> before): added and removed swapped per
  /// level, before/after metadata swapped.  Applying a delta then its
  /// reverse is an exact round trip for the integer-valued consumers.
  [[nodiscard]] HierarchyDelta reversed() const;
};

/// Per-level set difference of the two snapshots' box lists.  Box identity
/// is exact coordinate equality; order within a level does not matter.
[[nodiscard]] HierarchyDelta diff_hierarchies(const GridHierarchy& before,
                                              const GridHierarchy& after);

}  // namespace pragma::amr
