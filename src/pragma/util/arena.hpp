// Reusable per-thread scratch memory for hot kernels.
//
// The vectorized rasterization and communication kernels need small
// transient arrays (per-axis overlap tables, touched-cell stamps) for every
// box or delta they process.  Allocating those per box would put a heap
// round-trip in the innermost hot path; a ScratchArena instead hands out
// spans carved from grow-only storage that is reset (not freed) between
// uses, so steady-state kernels allocate nothing.
//
// Storage is a list of chunks that never move: carving a new span can add
// a chunk but never reallocates an existing one, so spans stay valid from
// one reset() to the next even when later carves grow the arena.  reset()
// coalesces multiple chunks into one, so after warm-up every carve is a
// bump allocation in a single block.
//
// The arena is intentionally trivial: no destructors run, so only
// trivially-destructible element types are allowed.  Use the thread_local
// accessor `scratch_arena()` from kernels that may run on the shared
// ThreadPool — each worker gets its own arena, so no synchronization is
// needed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace pragma::util {

class ScratchArena {
 public:
  /// Invalidate every span handed out so far and start carving from the
  /// front again.  Capacity is kept (grow-only); fragmented chunks from a
  /// growth burst are merged into one.
  void reset() {
    if (chunks_.size() > 1) {
      std::size_t total = 0;
      for (const auto& chunk : chunks_) total += chunk.size();
      chunks_.clear();
      chunks_.emplace_back(total);
    }
    used_ = 0;
  }

  /// A span of `count` value-initialized (zeroed) elements, valid until the
  /// next reset().
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena never runs destructors");
    const std::size_t bytes = count * sizeof(T);
    std::size_t offset =
        (used_ + alignof(T) - 1) / alignof(T) * alignof(T);
    if (chunks_.empty() || offset + bytes > chunks_.back().size()) {
      // A fresh chunk at least doubles the arena: the amortized warm-up
      // cost stays O(total) and reset() folds the pieces back together.
      const std::size_t grown = std::max<std::size_t>(
          {bytes, capacity_bytes() * 2, std::size_t{4096}});
      chunks_.emplace_back(grown);
      offset = 0;
    }
    T* data = reinterpret_cast<T*>(chunks_.back().data() + offset);
    used_ = offset + bytes;
    std::span<T> span(data, count);
    for (T& value : span) value = T{};
    return span;
  }

  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.size();
    return total;
  }

 private:
  /// Chunks never move once allocated; used_ indexes into chunks_.back().
  std::vector<std::vector<std::uint8_t>> chunks_;
  std::size_t used_ = 0;
};

/// The calling thread's scratch arena.  Callers must reset() before carving
/// (spans from earlier call sites on the same thread are dead by then).
[[nodiscard]] inline ScratchArena& scratch_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace pragma::util
