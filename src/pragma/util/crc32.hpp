// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the checkpoint envelope to detect torn writes and bit-flips.
// The implementation is the classic byte-at-a-time table walk: the
// checkpoint payloads are small (tens of KiB) so simplicity wins over a
// slicing-by-8 variant.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pragma::util {

/// CRC of `size` bytes, continuing from `seed` (pass the previous return
/// value to checksum a buffer in chunks; the default starts a new stream).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace pragma::util
