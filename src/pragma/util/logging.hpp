// Minimal leveled logger for the Pragma runtime.
//
// The logger is intentionally tiny: a global level, a sink (defaults to
// stderr), and printf-free formatted output built on std::ostringstream.
// Simulation components log through this so that examples can turn tracing
// on/off without recompiling.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace pragma::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Human-readable name of a log level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level);

/// Global logger configuration.  Thread-safe: the level is an atomic read
/// on the fast path and the sink is invoked under a mutex, so the
/// ThreadPool-parallel replay paths (and any other concurrent callers) can
/// log without interleaving or racing a set_sink().
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= this->level();
  }

  /// Replace the output sink (default writes "[LEVEL] message" to stderr).
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex sink_mutex_;  ///< guards sink_ replacement and invocation
  Sink sink_;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Log a message assembled by streaming all arguments.
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  logger.log(level, os.str());
}

template <typename... Args>
void log_trace(const Args&... args) {
  log(LogLevel::kTrace, args...);
}
template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::kError, args...);
}

}  // namespace pragma::util
