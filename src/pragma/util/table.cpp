#include "pragma/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace pragma::util {

TextTable::TextTable(std::vector<std::string> headers) {
  set_headers(std::move(headers));
}

void TextTable::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  if (alignment_.size() < headers_.size())
    alignment_.resize(headers_.size(), Align::kRight);
}

void TextTable::set_alignment(std::size_t column, Align align) {
  if (alignment_.size() <= column) alignment_.resize(column + 1, Align::kRight);
  alignment_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rules_.push_back(rows_.size()); }

std::string TextTable::render() const {
  std::size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return {};

  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = std::max(widths[c], headers_[c].size());
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_cell = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t pad = widths[c] - std::min(widths[c], text.size());
    const Align align =
        c < alignment_.size() ? alignment_[c] : Align::kRight;
    if (align == Align::kRight) out.append(pad, ' ');
    out += text;
    if (align == Align::kLeft) out.append(pad, ' ');
    return out;
  };

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < columns; ++c) {
      os << std::string(widths[c] + 2, '-');
      if (c + 1 != columns) os << '+';
    }
    os << '\n';
  };

  if (!headers_.empty()) {
    for (std::size_t c = 0; c < columns; ++c) {
      os << ' ' << render_cell(c < headers_.size() ? headers_[c] : "", c)
         << ' ';
      if (c + 1 != columns) os << '|';
    }
    os << '\n';
    rule();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) rule();
    for (std::size_t c = 0; c < columns; ++c) {
      os << ' '
         << render_cell(c < rows_[r].size() ? rows_[r][c] : "", c) << ' ';
      if (c + 1 != columns) os << '|';
    }
    os << '\n';
  }
  return os.str();
}

std::string cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string cell(long long value) { return std::to_string(value); }
std::string cell(std::size_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }

std::string percent_cell(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string sci_cell(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

void print_section(std::ostream& os, const std::string& title) {
  os << '\n' << title << '\n' << std::string(title.size(), '=') << '\n';
}

namespace {

/// Escape a string for use inside a JSON string literal: backslash, double
/// quote, and all control characters (the latter as \u00XX).  Bench names
/// and keys are normally tame identifiers, but nothing stops a caller from
/// forwarding user input (e.g. a trace path) into an entry name.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace

BenchJsonWriter& BenchJsonWriter::entry(const std::string& name) {
  entries_.push_back(Entry{name, {}});
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key, double value,
                                        int precision) {
  // "nan"/"inf" are not valid JSON tokens; emit null so downstream diff
  // tooling keeps parsing instead of choking on one poisoned metric.
  entries_.back().fields.emplace_back(
      key, std::isfinite(value) ? cell(value, precision) : "null");
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key,
                                        std::size_t value) {
  entries_.back().fields.emplace_back(key, std::to_string(value));
  return *this;
}

BenchJsonWriter& BenchJsonWriter::field(const std::string& key, int value) {
  entries_.back().fields.emplace_back(key, std::to_string(value));
  return *this;
}

std::string BenchJsonWriter::render() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    os << "  {\"name\": \"" << json_escape(e.name) << '"';
    for (const auto& [key, value] : e.fields)
      os << ", \"" << json_escape(key) << "\": " << value;
    os << '}' << (i + 1 < entries_.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

bool BenchJsonWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace pragma::util
