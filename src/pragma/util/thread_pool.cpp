#include "pragma/util/thread_pool.hpp"

#include <algorithm>

namespace pragma::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::size_t parallel_blocks(
    std::size_t n, int threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(threads, 1)), n);
  if (want <= 1) {
    fn(0, 0, n);
    return n == 0 ? 0 : 1;
  }
  const std::size_t per = (n + want - 1) / want;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t begin = 0; begin < n; begin += per)
    ranges.emplace_back(begin, std::min(begin + per, n));

  ThreadPool& pool = shared_pool();
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size() - 1);
  for (std::size_t b = 1; b < ranges.size(); ++b)
    futures.push_back(pool.submit([&fn, b, range = ranges[b]] {
      fn(b, range.first, range.second);
    }));
  fn(0, ranges[0].first, ranges[0].second);
  for (std::future<void>& future : futures) pool.get_helping(future);
  return ranges.size();
}

}  // namespace pragma::util
