// Deterministic random number generation for simulations.
//
// Every stochastic component in the Pragma testbed draws from an explicitly
// seeded stream so that experiments are reproducible bit-for-bit.  We use
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64, which is both fast and statistically strong — important when a
// discrete-event run draws millions of variates.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pragma::util {

/// splitmix64 step: used for seeding and for hashing stream ids.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed from a master seed plus a stream id; distinct streams are
  /// statistically independent for practical purposes.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
               std::uint64_t stream = 0) {
    reseed(seed, stream);
  }

  void reseed(std::uint64_t seed, std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (0xd2b74407b1ce6e93ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Standard normal variate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Log-normal variate parameterized by the mean/sigma of the underlying
  /// normal distribution.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Pareto variate with scale xm > 0 and shape alpha > 0 (heavy-tailed
  /// durations for the synthetic load generator).
  double pareto(double xm, double alpha);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pragma::util
