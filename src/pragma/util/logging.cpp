#include "pragma/util/logging.hpp"

#include <cstdio>
#include <utility>

namespace pragma::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(message.size()),
                 message.data());
  };
}

void Logger::set_sink(Sink sink) {
  if (!sink) return;
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(level, message);
}

}  // namespace pragma::util
