// Structured, size-bounded error handling for the I/O boundary.
//
// Everything that crosses the trust boundary — adaptation traces, policy
// rule files, checkpoint snapshots — parses *untrusted* bytes.  Those
// paths return Status / Expected<T> instead of throwing: a malformed or
// hostile input must yield a bounded, inspectable error, never a crash,
// an unbounded allocation, or an exception used for control flow.
//
// Conventions (see DESIGN.md "Durability & error-handling conventions"):
//   * parsers and loaders of external bytes return Expected<T>;
//   * programmer errors (violated preconditions on in-process data) keep
//     throwing std::logic_error family exceptions;
//   * legacy throwing wrappers (load_trace, parse_rules) remain and simply
//     rethrow the Status message for callers that predate this layer.
//
// Error messages are truncated to kMaxMessageBytes so that hostile input
// echoed into a message cannot balloon memory or log volume.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace pragma::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< input violates the format contract
  kOutOfRange,         ///< a value parsed but exceeds its documented cap
  kDataLoss,           ///< corruption detected (CRC mismatch, torn write)
  kNotFound,           ///< missing file / no valid checkpoint generation
  kFailedPrecondition, ///< valid bytes, wrong context (config mismatch)
  kUnimplemented,      ///< versioned format from the future
  kInternal,           ///< I/O syscall failure and other environment errors
  kUnavailable,        ///< transient overload (admission queue full, shed)
  kResourceExhausted,  ///< a per-run resource budget was exceeded
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
  }
  return "unknown";
}

class Status {
 public:
  /// Hard cap on stored message size; longer messages are truncated with
  /// a "..." marker.  Bounds the damage of echoing hostile input.
  static constexpr std::size_t kMaxMessageBytes = 512;

  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (message_.size() > kMaxMessageBytes) {
      message_.resize(kMaxMessageBytes);
      message_ += "...";
    }
  }

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status invalid(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  [[nodiscard]] static Status out_of_range(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  [[nodiscard]] static Status data_loss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  [[nodiscard]] static Status not_found(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  [[nodiscard]] static Status failed_precondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  [[nodiscard]] static Status unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  [[nodiscard]] static Status internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  [[nodiscard]] static Status unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  [[nodiscard]] static Status resource_exhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "data-loss: payload CRC mismatch" — for logs and legacy rethrow.
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(util::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence.  Minimal by design —
/// enough for the loader/parser call sites without pulling in C++23.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT
  Expected(Status status) : status_(std::move(status)) {             // NOLINT
    if (status_.is_ok())
      status_ = Status::internal("Expected constructed from OK status");
  }

  [[nodiscard]] bool has_value() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  [[nodiscard]] const T& value() const& { return value_; }
  [[nodiscard]] T& value() & { return value_; }
  [[nodiscard]] T&& value() && { return std::move(value_); }

  /// Status::ok() when a value is present.
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  T value_{};
  Status status_{};
  bool has_value_ = false;
};

}  // namespace pragma::util
