#include "pragma/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pragma::util {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - m) * (x - m);
  return total / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_value(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("mean_absolute_error: size mismatch");
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total / static_cast<double>(a.size());
}

double root_mean_squared_error(std::span<const double> a,
                               std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("root_mean_squared_error: size mismatch");
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(a.size()));
}

double correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("correlation: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  LinearFit fit;
  if (x.size() < 2) {
    fit.intercept = y.empty() ? 0.0 : y[0];
    return fit;
  }
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double imbalance(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  const double m = mean(loads);
  if (m == 0.0) return 0.0;
  return (max_value(loads) - m) / m;
}

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  values_.reserve(capacity_);
}

void SlidingWindow::push(double x) {
  if (values_.size() < capacity_) {
    values_.push_back(x);
    sum_ += x;
    return;
  }
  sum_ += x - values_[head_];
  values_[head_] = x;
  head_ = (head_ + 1) % capacity_;
}

void SlidingWindow::clear() {
  values_.clear();
  head_ = 0;
  sum_ = 0.0;
}

double SlidingWindow::mean() const {
  return values_.empty() ? 0.0
                         : sum_ / static_cast<double>(values_.size());
}

double SlidingWindow::median() const {
  return pragma::util::median(std::span<const double>(values_));
}

std::vector<double> SlidingWindow::values() const {
  std::vector<double> out;
  out.reserve(values_.size());
  if (values_.size() < capacity_) {
    out = values_;
  } else {
    for (std::size_t i = 0; i < values_.size(); ++i)
      out.push_back(values_[(head_ + i) % capacity_]);
  }
  return out;
}

}  // namespace pragma::util
