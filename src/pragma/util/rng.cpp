#include "pragma/util/rng.hpp"

#include <cmath>

namespace pragma::util {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  // Guard against log(0); uniform() < 1 so 1-u > 0.
  return -std::log1p(-uniform()) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

}  // namespace pragma::util
