// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures; this
// helper renders aligned ASCII tables that mirror the paper's layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pragma::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows of strings (use the
/// cell() helpers to format numbers), then render.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> headers);

  void set_headers(std::vector<std::string> headers);
  void set_alignment(std::size_t column, Align align);
  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices preceded by a rule
  std::vector<Align> alignment_;
};

/// Format a double with fixed precision.
[[nodiscard]] std::string cell(double value, int precision = 3);
/// Format an integer.
[[nodiscard]] std::string cell(long long value);
[[nodiscard]] std::string cell(std::size_t value);
[[nodiscard]] std::string cell(int value);
/// Format a percentage ("12.3%").
[[nodiscard]] std::string percent_cell(double fraction, int precision = 1);
/// Format in scientific notation (matches the paper's Table 1 style).
[[nodiscard]] std::string sci_cell(double value, int precision = 4);

/// Print a titled section header for bench output.
void print_section(std::ostream& os, const std::string& title);

/// Shared emitter for the BENCH_*.json files: a JSON array of flat objects,
/// each with a "name" field followed by numeric fields, one object per
/// line.  Every bench harness uses this so the files share one schema and
/// can be diffed mechanically across runs.
class BenchJsonWriter {
 public:
  /// Start a new entry.  Fields added afterwards belong to it.
  BenchJsonWriter& entry(const std::string& name);
  /// Append a numeric field to the current entry.  Doubles render with
  /// fixed precision (default matches the ns/op convention, 1 digit);
  /// non-finite values (NaN/Inf) serialize as JSON null.
  BenchJsonWriter& field(const std::string& key, double value,
                         int precision = 1);
  BenchJsonWriter& field(const std::string& key, std::size_t value);
  BenchJsonWriter& field(const std::string& key, int value);

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  /// Render the whole array (trailing newline included).
  [[nodiscard]] std::string render() const;
  /// Write to `path`; false when the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, std::string>> fields;
  };
  std::vector<Entry> entries_;
};

}  // namespace pragma::util
