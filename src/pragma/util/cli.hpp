// Tiny command-line flag parser shared by the examples and benches.
//
// Supports "--name=value", "--name value" and boolean "--name" forms plus
// automatic --help text.  No external dependencies.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pragma::util {

/// Declarative flag set.  Register flags with defaults, parse argv, then
/// query typed values.  Unknown flags raise an error in parse().
class CliFlags {
 public:
  explicit CliFlags(std::string program_description = {});

  void add_int(const std::string& name, long long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse arguments.  Returns false (after printing usage) when --help was
  /// requested; throws std::invalid_argument on malformed input.
  bool parse(int argc, const char* const* argv);

  /// Overlay environment variables onto the registered defaults: for every
  /// flag `some-name`, the variable `<prefix>_SOME_NAME` (dashes become
  /// underscores, letters upper-cased), when set and non-empty, replaces
  /// the flag's current value.  Call before parse() so explicit CLI
  /// arguments still win — this is the one env/CLI merge path shared by
  /// every binary.  Returns the number of flags overridden.
  std::size_t merge_env(const std::string& prefix);

  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// True when `name` was set explicitly (CLI argument or environment
  /// override) rather than left at its registered default.  Lets
  /// validators distinguish "--budget-cpu-s 0" (reject loudly) from the
  /// 0-means-unlimited default.
  [[nodiscard]] bool explicitly_set(const std::string& name) const;
  /// The verbatim token that set `name` — "--flag=value", "--flag value",
  /// or "PRAGMA_FLAG=value" — for caret diagnostics; empty when the flag
  /// is still at its default.
  [[nodiscard]] const std::string& provenance(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical string form
    bool set = false;   // explicitly set (CLI or env), not defaulted
    std::string raw;    // verbatim token that set it (diagnostics)
  };
  const Flag& find(const std::string& name, Type type) const;
  const Flag& find_any(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pragma::util
