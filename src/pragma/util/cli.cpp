#include "pragma/util/cli.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pragma::util {

CliFlags::CliFlags(std::string program_description)
    : description_(std::move(program_description)) {}

void CliFlags::add_int(const std::string& name, long long default_value,
                       const std::string& help) {
  flags_[name] = Flag{Type::kInt, help, std::to_string(default_value)};
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, help, os.str()};
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kBool, help, default_value ? "true" : "false"};
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    std::string raw = arg;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end())
      throw std::invalid_argument("unknown flag --" + name);
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
        raw += " ";
        raw += value;
      } else {
        throw std::invalid_argument("flag --" + name + " requires a value");
      }
    }
    it->second.value = value;
    it->second.set = true;
    it->second.raw = std::move(raw);
  }
  return true;
}

std::size_t CliFlags::merge_env(const std::string& prefix) {
  std::size_t merged = 0;
  for (auto& [name, flag] : flags_) {
    std::string variable = prefix + "_" + name;
    for (char& c : variable) {
      if (c == '-') c = '_';
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    const char* raw = std::getenv(variable.c_str());
    if (raw == nullptr || *raw == '\0') continue;
    // Validate through the same conversions the getters use so a malformed
    // variable fails loudly here, not at first use.
    const std::string value = raw;
    switch (flag.type) {
      case Type::kInt:
        try {
          (void)std::stoll(value);
        } catch (const std::exception&) {
          throw std::invalid_argument("environment variable " + variable +
                                      " is not an integer: " + value);
        }
        break;
      case Type::kDouble:
        try {
          (void)std::stod(value);
        } catch (const std::exception&) {
          throw std::invalid_argument("environment variable " + variable +
                                      " is not a number: " + value);
        }
        break;
      case Type::kBool:
      case Type::kString:
        break;
    }
    flag.value = value;
    flag.set = true;
    flag.raw = variable + "=" + value;
    ++merged;
  }
  return merged;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::out_of_range("flag --" + name + " not registered");
  if (it->second.type != type)
    throw std::out_of_range("flag --" + name + " queried with wrong type");
  return it->second;
}

long long CliFlags::get_int(const std::string& name) const {
  return std::stoll(find(name, Type::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(find(name, Type::kDouble).value);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = find(name, Type::kBool).value;
  return v == "true" || v == "1" || v == "yes";
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Type::kString).value;
}

const CliFlags::Flag& CliFlags::find_any(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::out_of_range("flag --" + name + " not registered");
  return it->second;
}

bool CliFlags::explicitly_set(const std::string& name) const {
  return find_any(name).set;
}

const std::string& CliFlags::provenance(const std::string& name) const {
  return find_any(name).raw;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  if (!description_.empty()) os << description_ << "\n";
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace pragma::util
