// A small fixed-size thread pool (no work stealing: one shared FIFO queue).
//
// Used to run independent replays of a bench table concurrently and to
// parallelize the hot loops of the partitioning pipeline (WorkGrid
// rasterization, the communication-volume face sweep).  Waiting callers
// help drain the queue (`help_while_waiting` / `get_helping`), so nested
// parallel sections cannot deadlock even when every worker is occupied by
// an outer task.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pragma::util {

class ThreadPool {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue `fn` and return a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Pop and run one queued task on the calling thread; false if the queue
  /// was empty.  This is how waiting callers keep the pool deadlock-free.
  bool try_run_one();

  /// Block until `future` is ready, draining queued tasks on the calling
  /// thread in the meantime.
  template <typename T>
  T get_helping(std::future<T>& future) {
    using namespace std::chrono_literals;
    while (future.wait_for(0s) != std::future_status::ready)
      if (!try_run_one()) future.wait_for(1ms);
    return future.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool (lazily created, hardware_concurrency workers).
[[nodiscard]] ThreadPool& shared_pool();

/// Partition [0, n) into at most `threads` contiguous blocks and run
/// fn(block, begin, end) for each, block 0 on the calling thread and the
/// rest on the shared pool.  Returns the number of blocks used (callers
/// merge per-block partials in block order for deterministic reduction).
/// threads <= 1, or n too small to split, degrades to one inline call —
/// byte-for-byte the serial code path.
std::size_t parallel_blocks(
    std::size_t n, int threads,
    const std::function<void(std::size_t block, std::size_t begin,
                             std::size_t end)>& fn);

/// Clamped thread-count helper: 0 (auto) -> hardware_concurrency, min 1.
[[nodiscard]] int resolve_threads(int threads);

}  // namespace pragma::util
