// Streaming and batch statistics used throughout the monitoring, forecasting
// and evaluation code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pragma::util {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers.  All take a span and do not modify the input.
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] double sum(std::span<const double> xs);

/// Mean absolute error between two equally-sized series.
[[nodiscard]] double mean_absolute_error(std::span<const double> a,
                                         std::span<const double> b);
/// Root mean squared error between two equally-sized series.
[[nodiscard]] double root_mean_squared_error(std::span<const double> a,
                                             std::span<const double> b);

/// Pearson correlation coefficient; 0 if either series is constant.
[[nodiscard]] double correlation(std::span<const double> a,
                                 std::span<const double> b);

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Coefficient of variation max/mean - 1 style imbalance metric:
/// (max - mean) / mean, expressed as a fraction (0 == perfectly balanced).
[[nodiscard]] double imbalance(std::span<const double> loads);

/// Fixed-capacity sliding window of doubles with O(1) push and streaming
/// sum; used by sliding-window forecasters.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void push(double x);
  void clear();

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return values_.size() == capacity_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Median of the current window contents (O(n log n)).
  [[nodiscard]] double median() const;
  /// Window contents in insertion order, oldest first.
  [[nodiscard]] std::vector<double> values() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element when full
  std::vector<double> values_;
  double sum_ = 0.0;
};

}  // namespace pragma::util
