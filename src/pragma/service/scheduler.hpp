// Multi-run scheduler: admits, queues, and concurrently executes many
// managed runs over a shared util::ThreadPool.
//
// The paper's Pragma is an *infrastructure*: one deployment manages many
// grid applications at once.  This scheduler is that layer.  Admission is
// a bounded queue with backpressure — when it is full, submit() sheds the
// run with util::Status::unavailable instead of queueing unboundedly.
// Dispatch is fair-share across tenants (each tenant's dispatched count,
// normalized by its weight, is balanced) with per-run priority inside a
// tenant and FIFO tie-breaking, so one chatty tenant cannot starve the
// rest and ordering stays deterministic.
//
// Isolation: every run executes in its own core::ManagedRun /
// core::TraceRunner instance — its own discrete-event simulator, cluster
// model, message center, and seeded RNG streams — so N concurrent runs
// produce bitwise the same reports as the same N runs executed serially
// (RunSpec::derived gives each run of a batch a distinct seed stream,
// checkpoint dir, and obs artifact paths).
//
// Cancellation is cooperative: queued runs are removed immediately;
// running ones are flagged and stop at the next coarse-step (managed) or
// snapshot (replay) boundary, custom workloads poll RunContext.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pragma/service/run_spec.hpp"
#include "pragma/util/status.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::service {

class Journal;

enum class RunState { kQueued, kRunning, kCompleted, kFailed, kCancelled };

[[nodiscard]] const char* to_string(RunState state);
[[nodiscard]] constexpr bool is_terminal(RunState state) {
  return state == RunState::kCompleted || state == RunState::kFailed ||
         state == RunState::kCancelled;
}

/// Everything a finished run produced.  Exactly one of the per-kind
/// payloads is meaningful, selected by the spec's WorkloadKind.
struct RunOutcome {
  RunState state = RunState::kQueued;
  util::Status status;  ///< non-ok explains kFailed
  core::ManagedRunReport managed;
  core::RunSummary replay;
  core::SystemSensitiveResult system_sensitive;
  double queue_s = 0.0;  ///< admission -> dispatch wall time
  double exec_s = 0.0;   ///< dispatch -> completion wall time
  /// The run finished under a throttle-action budget violation (it ran to
  /// completion, slowed by ResourceBudget::throttle_factor).
  bool budget_throttled = false;
  /// Per-run resource usage (all-zero when no accountant is configured).
  res::ResourceUsage usage;
};

class Scheduler;

namespace detail {
/// Shared state of one submitted run.  Lock ordering: a thread holding
/// Scheduler::mu_ may take Ticket::mu, never the reverse.
struct Ticket {
  RunSpec spec;
  std::uint64_t sequence = 0;
  /// Journal sequence of this run's pending record (0 = not journaled);
  /// the terminal-state transition appends the matching tombstone.
  std::uint64_t journal_seq = 0;
  std::chrono::steady_clock::time_point submitted_at;
  std::mutex mu;
  std::condition_variable cv;
  RunState state = RunState::kQueued;  // guarded by mu
  RunOutcome outcome;                  // stable once state is terminal
  std::atomic<bool> cancel{false};
  core::ManagedRun* active = nullptr;  // guarded by mu; only while running
};
}  // namespace detail

/// Async handle to a submitted run: status, cooperative cancel, blocking
/// join.  Copyable; all copies observe the same run.
class RunHandle {
 public:
  RunHandle() = default;

  [[nodiscard]] bool valid() const { return ticket_ != nullptr; }
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] RunState state() const;
  [[nodiscard]] bool done() const { return is_terminal(state()); }

  /// Request cancellation.  Queued runs are withdrawn immediately; running
  /// ones stop at their next cooperative boundary.  Returns false when the
  /// run had already reached a terminal state.
  bool cancel();

  /// Block until the run reaches a terminal state.  The returned reference
  /// stays valid for the handle's lifetime.
  const RunOutcome& wait();

 private:
  friend class Scheduler;
  RunHandle(std::shared_ptr<detail::Ticket> ticket, Scheduler* scheduler)
      : ticket_(std::move(ticket)), scheduler_(scheduler) {}

  std::shared_ptr<detail::Ticket> ticket_;
  Scheduler* scheduler_ = nullptr;
};

/// Per-tenant token-bucket admission rate limit, checked *ahead* of
/// fair-share: fair-share balances tenants already admitted, the bucket
/// bounds how fast any one tenant may add to that pool.
struct TenantRateLimit {
  /// Sustained submissions per second per tenant (0 = rate limit off).
  double rate_per_s = 0.0;
  /// Bucket capacity: short bursts up to this many submissions pass even
  /// at zero accumulated credit history.
  double burst = 16.0;
};

struct SchedulerConfig {
  /// Runs in flight at once.  0 = the executing pool's thread count.
  std::size_t workers = 0;
  /// Bounded admission queue: submissions beyond this many *queued* runs
  /// are shed with Status::unavailable.
  std::size_t queue_capacity = 64;
  /// Per-tenant token bucket (first rung of the degradation ladder).
  TenantRateLimit rate_limit = {};
  /// Retry-after hint attached to queue-full sheds (the rate-limit shed
  /// computes its own hint from the token deficit).
  int shed_retry_after_ms = 50;
  /// Write-ahead journal for admitted runs: when non-null, every
  /// admitted spec is durably appended before submit() returns and
  /// tombstoned on its terminal transition.  Not owned; must outlive the
  /// scheduler.  Null = journaling off (byte-identical legacy path).
  Journal* journal = nullptr;
  /// Per-run resource accounting and budget enforcement: when non-null,
  /// every dispatched run charges its modeled CPU/memory/IO to an account
  /// and a RunSpec budget violation is enforced (kill-action runs shed
  /// with Status::resource_exhausted carrying the retry-after hint,
  /// throttle-action ones finish slowed).  Not owned; must outlive the
  /// scheduler.  Null = accounting off (byte-identical legacy path).
  res::ResourceAccountant* accountant = nullptr;
};

struct SchedulerStats {
  std::size_t submitted = 0;  ///< admitted into the queue
  std::size_t rejected = 0;   ///< shed at admission (queue full / shutdown)
  std::size_t shed_queue_full = 0;
  std::size_t shed_rate_limited = 0;
  std::size_t shed_journal = 0;  ///< journal saturated / payload rejected
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t budget_killed = 0;     ///< kill-action budget violations
  std::size_t budget_throttled = 0;  ///< throttle-action budget violations
  std::size_t peak_queue_depth = 0;
  std::size_t peak_running = 0;
  double queue_p50_s = 0.0;  ///< median admission->dispatch latency
  double queue_p99_s = 0.0;
};

class Scheduler {
 public:
  /// `pool` must outlive the scheduler; null uses util::shared_pool().
  explicit Scheduler(SchedulerConfig config = {},
                     util::ThreadPool* pool = nullptr);
  /// Cancels queued runs, requests cancellation of running ones, and
  /// waits for everything in flight to finish.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a run.  Fails with Status::unavailable when the tenant's rate
  /// limit, the admission queue, or the journal sheds it (backpressure:
  /// the status carries a retry-after hint — see retry_after_ms() in
  /// journal.hpp).  When a journal is configured, the pending record is
  /// durable before this returns.
  [[nodiscard]] util::Expected<RunHandle> submit(RunSpec spec);

  /// Resubmit a journal-recovered run under its original journal
  /// sequence: skips the rate limiter (the run was already admitted once)
  /// and does not re-append — the existing record stays live until the
  /// rerun's terminal tombstone.
  [[nodiscard]] util::Expected<RunHandle> resubmit_recovered(
      RunSpec spec, std::uint64_t journal_seq);

  /// Fair-share weight of a tenant (default 1.0; larger = more slots).
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Block until the queue is empty and no run is in flight.
  void drain();

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  friend class RunHandle;
  using TicketPtr = std::shared_ptr<detail::Ticket>;

  [[nodiscard]] std::size_t workers() const;
  /// submit()/resubmit_recovered() body.
  [[nodiscard]] util::Expected<RunHandle> admit(RunSpec spec,
                                                bool rate_limited,
                                                std::uint64_t recovered_seq);
  /// Token-bucket check for `tenant`.  Requires mu_.  Returns ok or the
  /// shed status with a computed retry-after hint.
  [[nodiscard]] util::Status check_rate_limit(const std::string& tenant);
  /// Dispatch queued tickets while worker slots are free.  Requires mu_.
  void maybe_dispatch();
  /// Remove and return the fair-share pick.  Requires mu_; queue_ must be
  /// non-empty.
  [[nodiscard]] TicketPtr pick_next();
  /// Pool-thread body: execute one run and publish its outcome.
  void execute(const TicketPtr& ticket);
  void finish(const TicketPtr& ticket, RunOutcome outcome);
  bool cancel_ticket(const TicketPtr& ticket);

  SchedulerConfig config_;
  util::ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<TicketPtr> queue_;
  std::vector<TicketPtr> inflight_;
  std::size_t running_ = 0;
  bool shutdown_ = false;
  std::uint64_t next_sequence_ = 0;
  /// Admissions past the capacity check but not yet enqueued (their
  /// journal append runs outside mu_); counted against queue_capacity so
  /// concurrent submitters cannot oversubscribe the queue.
  std::size_t reserved_ = 0;
  struct Tenant {
    double weight = 1.0;
    std::uint64_t dispatched = 0;
    // Token bucket (meaningful only when rate_limit.rate_per_s > 0).
    double tokens = 0.0;
    bool bucket_primed = false;
    std::chrono::steady_clock::time_point last_refill;
  };
  std::map<std::string, Tenant> tenants_;
  SchedulerStats stats_;
  std::vector<double> queue_latencies_s_;
};

}  // namespace pragma::service
