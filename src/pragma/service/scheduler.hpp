// Multi-run scheduler: admits, queues, and concurrently executes many
// managed runs over a shared util::ThreadPool.
//
// The paper's Pragma is an *infrastructure*: one deployment manages many
// grid applications at once.  This scheduler is that layer.  Admission is
// a bounded queue with backpressure — when it is full, submit() sheds the
// run with util::Status::unavailable instead of queueing unboundedly.
// Dispatch is fair-share across tenants (each tenant's dispatched count,
// normalized by its weight, is balanced) with per-run priority inside a
// tenant and FIFO tie-breaking, so one chatty tenant cannot starve the
// rest and ordering stays deterministic.
//
// Admission is *sharded*: tenants hash onto admission shards, each with
// its own mutex guarding that shard's token buckets and staging queue, so
// concurrent submitters no longer serialize on one global lock.  Capacity
// is a single atomic occupancy counter; the central fair-share state
// (tenant weights, dispatched counts, the dispatch queue) stays under one
// mutex but is only touched when a worker slot is actually free.  The
// fair-share pick compares *fields* (tenant share, priority, admission
// sequence), never queue position, so draining shard staging queues into
// the dispatch queue in any order preserves the exact dispatch order of
// the unsharded scheduler.
//
// submit_batch() admits N specs in one call: per-item rate-limit and
// capacity decisions (a shed item's slot carries its own status while the
// rest proceed), ONE write-ahead-journal append + ONE group-commit fsync
// for the whole admitted set (see Journal::append_batch), and coalescing
// of identical specs — duplicates of the same journal_key with identical
// encoded payloads attach to one execution and every returned RunHandle
// observes that shared outcome.
//
// Shed ladder classification (every admission-time rejection carries a
// machine-readable " [shed=<reason>]" tag — decode with shed_info() from
// admission.hpp; " [retry_after_ms=N]" hints remain for the legacy
// retry_after_ms() parser):
//
//   reason             | status code        | retry? | hint
//   -------------------+--------------------+--------+--------------------
//   rate-limited       | kUnavailable       | yes    | token deficit
//   queue-full         | kUnavailable       | yes    | shed_retry_after_ms
//   journal-saturated  | kUnavailable       | yes    | journal config hint
//   payload-too-large  | kOutOfRange        | no     | none (spec too big)
//   budget-exhausted   | kResourceExhausted | yes    | shed_retry_after_ms
//   shutting-down      | kUnavailable       | no     | none (terminal)
//
// Rejections that are *not* admission sheds keep their own codes and stay
// untagged — e.g. agents::MessageCenter::register_port collision returns
// kFailedPrecondition (a wiring error; retrying cannot help), and
// shed_info().retryable() correctly refuses to retry it.
//
// Isolation: every run executes in its own core::ManagedRun /
// core::TraceRunner instance — its own discrete-event simulator, cluster
// model, message center, and seeded RNG streams — so N concurrent runs
// produce bitwise the same reports as the same N runs executed serially
// (RunSpec::derived gives each run of a batch a distinct seed stream,
// checkpoint dir, and obs artifact paths).
//
// Cancellation is cooperative: queued runs are removed immediately;
// running ones are flagged and stop at the next coarse-step (managed) or
// snapshot (replay) boundary, custom workloads poll RunContext.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pragma/service/admission.hpp"
#include "pragma/service/run_spec.hpp"
#include "pragma/util/status.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::service {

class Journal;

/// Per-tenant token-bucket admission rate limit, checked *ahead* of
/// fair-share: fair-share balances tenants already admitted, the bucket
/// bounds how fast any one tenant may add to that pool.
struct TenantRateLimit {
  /// Sustained submissions per second per tenant (0 = rate limit off).
  double rate_per_s = 0.0;
  /// Bucket capacity: short bursts up to this many submissions pass even
  /// at zero accumulated credit history.
  double burst = 16.0;
};

struct SchedulerConfig {
  /// Runs in flight at once.  0 = the executing pool's thread count.
  std::size_t workers = 0;
  /// Bounded admission queue: submissions beyond this many *queued* runs
  /// are shed with Status::unavailable.
  std::size_t queue_capacity = 64;
  /// Admission shards: tenants hash onto shards, each with its own lock,
  /// so concurrent submitters contend per shard instead of globally.
  /// 0 = auto (min(8, hardware threads)); 1 = the unsharded layout.
  std::size_t admission_shards = 0;
  /// Coalesce identical specs inside one submit_batch() call: duplicates
  /// of the same journal_key with identical encoded payloads share one
  /// execution (and one journal record); every handle observes the shared
  /// outcome.  Single submit() calls never coalesce.
  bool coalesce_batches = true;
  /// Per-tenant token bucket (first rung of the degradation ladder).
  TenantRateLimit rate_limit = {};
  /// Retry-after hint attached to queue-full sheds (the rate-limit shed
  /// computes its own hint from the token deficit).
  int shed_retry_after_ms = 50;
  /// Write-ahead journal for admitted runs: when non-null, every
  /// admitted spec is durably appended before submit() returns and
  /// tombstoned on its terminal transition.  Not owned; must outlive the
  /// scheduler.  Null = journaling off (byte-identical legacy path).
  Journal* journal = nullptr;
  /// Per-run resource accounting and budget enforcement: when non-null,
  /// every dispatched run charges its modeled CPU/memory/IO to an account
  /// and a RunSpec budget violation is enforced (kill-action runs shed
  /// with Status::resource_exhausted carrying the retry-after hint,
  /// throttle-action ones finish slowed).  Not owned; must outlive the
  /// scheduler.  Null = accounting off (byte-identical legacy path).
  res::ResourceAccountant* accountant = nullptr;
};

struct SchedulerStats {
  std::size_t submitted = 0;  ///< admitted into the queue
  std::size_t rejected = 0;   ///< shed at admission (queue full / shutdown)
  std::size_t shed_queue_full = 0;
  std::size_t shed_rate_limited = 0;
  std::size_t shed_journal = 0;  ///< journal saturated / payload rejected
  std::size_t batches = 0;       ///< submit_batch() calls
  std::size_t batch_specs = 0;   ///< specs that arrived via submit_batch()
  std::size_t coalesced = 0;     ///< duplicates attached to a primary run
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t budget_killed = 0;     ///< kill-action budget violations
  std::size_t budget_throttled = 0;  ///< throttle-action budget violations
  std::size_t peak_queue_depth = 0;
  std::size_t peak_running = 0;
  double queue_p50_s = 0.0;  ///< median admission->dispatch latency
  double queue_p99_s = 0.0;
};

class Scheduler : public Admission, public detail::TicketOwner {
 public:
  /// `pool` must outlive the scheduler; null uses util::shared_pool().
  explicit Scheduler(SchedulerConfig config = {},
                     util::ThreadPool* pool = nullptr);
  /// Cancels queued runs, requests cancellation of running ones, and
  /// waits for everything in flight to finish.
  ~Scheduler() override;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a run.  Fails with Status::unavailable when the tenant's rate
  /// limit, the admission queue, or the journal sheds it (backpressure:
  /// the status carries a ShedInfo reason tag and a retry-after hint —
  /// see shed_info() in admission.hpp).  When a journal is configured,
  /// the pending record is durable before this returns.
  [[nodiscard]] util::Expected<RunHandle> submit(RunSpec spec) override;

  /// Admit a batch: one WAL append + one fsync for every admitted spec,
  /// per-item shed statuses, identical specs coalesced onto one
  /// execution.  Results are positional: results[i] belongs to specs[i].
  [[nodiscard]] std::vector<util::Expected<RunHandle>> submit_batch(
      std::vector<RunSpec> specs) override;

  /// Resubmit a journal-recovered run under its original journal
  /// sequence: skips the rate limiter (the run was already admitted once)
  /// and does not re-append — the existing record stays live until the
  /// rerun's terminal tombstone.
  [[nodiscard]] util::Expected<RunHandle> resubmit_recovered(
      RunSpec spec, std::uint64_t journal_seq);

  /// Fair-share weight of a tenant (default 1.0; larger = more slots).
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Block until the queue is empty and no run is in flight.
  void drain();

  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  using TicketPtr = std::shared_ptr<detail::Ticket>;

  struct TokenBucket {
    double tokens = 0.0;
    bool primed = false;
    std::chrono::steady_clock::time_point last_refill;
  };
  /// One admission shard.  Its mutex guards the staging queue and the
  /// token buckets of every tenant that hashes here.  Lock order:
  /// mu_ may be held when taking a shard mutex (the dispatch drain),
  /// never the reverse — a submitter releases the shard before kicking
  /// dispatch.
  struct Shard {
    std::mutex mu;
    std::deque<TicketPtr> staged;
    std::map<std::string, TokenBucket> buckets;
  };

  [[nodiscard]] std::size_t workers() const;
  [[nodiscard]] Shard& shard_for(const std::string& tenant);
  /// submit()/resubmit_recovered() body.
  [[nodiscard]] util::Expected<RunHandle> admit(RunSpec spec,
                                                bool rate_limited,
                                                std::uint64_t recovered_seq);
  /// Token-bucket check for `tenant`.  Requires shard.mu.  Returns ok or
  /// the shed status with a computed retry-after hint.
  [[nodiscard]] util::Status check_rate_limit(Shard& shard,
                                              const std::string& tenant);
  /// Claim one queue slot against queue_capacity (single atomic
  /// fetch-add); false = queue full.  A successful reservation is
  /// released by stage(), release_reservation(), or ticket doom.
  [[nodiscard]] bool try_reserve();
  void release_reservation();
  /// Convert a reservation into a staged ticket: assign its admission
  /// sequence and push it onto the shard's staging queue.  Returns false
  /// when shutdown raced the staging (the caller resolves the shed; a
  /// journaled record stays live for recovery).
  [[nodiscard]] bool stage(Shard& shard, const TicketPtr& ticket);
  /// Lock-free fast path: only take mu_ (and dispatch) when a worker
  /// slot might be free.
  void kick_dispatch();
  /// Move every staged ticket into the central dispatch queue.  Requires
  /// mu_ (takes each shard mutex inside).
  void drain_shards_locked();
  /// Dispatch queued tickets while worker slots are free.  Requires mu_.
  void maybe_dispatch();
  /// Remove and return the fair-share pick.  Requires mu_; queue_ must be
  /// non-empty.
  [[nodiscard]] TicketPtr pick_next();
  /// Pool-thread body: execute one run and publish its outcome.
  void execute(const TicketPtr& ticket);
  void finish(const TicketPtr& ticket, RunOutcome outcome);
  bool cancel_ticket(const TicketPtr& ticket) override;

  SchedulerConfig config_;
  util::ThreadPool* pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> next_sequence_{0};
  /// staged + centrally queued + reserved (journal append in flight) —
  /// the whole capacity check is one fetch-add on this counter.
  std::atomic<std::size_t> occupied_{0};
  /// Reservations whose journal append is still in flight (subset of
  /// occupied_); queue_depth() = occupied_ - reserved_.
  std::atomic<std::size_t> reserved_{0};
  /// Tickets sitting in shard staging queues (subset of occupied_); lets
  /// the dispatcher skip the shard sweep when nothing is staged.
  std::atomic<std::size_t> staged_{0};
  std::atomic<std::size_t> running_{0};

  // Admission-side counters: bumped from shard context without mu_.
  std::atomic<std::size_t> n_submitted_{0};
  std::atomic<std::size_t> n_rejected_{0};
  std::atomic<std::size_t> n_shed_queue_full_{0};
  std::atomic<std::size_t> n_shed_rate_limited_{0};
  std::atomic<std::size_t> n_shed_journal_{0};
  std::atomic<std::size_t> n_batches_{0};
  std::atomic<std::size_t> n_batch_specs_{0};
  std::atomic<std::size_t> n_coalesced_{0};
  std::atomic<std::size_t> peak_queue_depth_{0};

  mutable std::mutex mu_;  ///< dispatch queue + fair-share + terminal stats
  std::condition_variable idle_cv_;
  std::deque<TicketPtr> queue_;
  std::vector<TicketPtr> inflight_;
  struct Tenant {
    double weight = 1.0;
    std::uint64_t dispatched = 0;
  };
  std::map<std::string, Tenant> tenants_;
  /// Terminal-side counters (completed/failed/cancelled/budget/peaks),
  /// guarded by mu_.
  SchedulerStats terminal_stats_;
  std::vector<double> queue_latencies_s_;
};

}  // namespace pragma::service
