// RunSpec: the one composable description of a Pragma run.
//
// Before the service layer, every entry point carried its own config
// struct — core::ManagedRunConfig for managed executions,
// core::TraceRunConfig for replays, core::SystemSensitiveConfig for the
// Table 5 experiment — and every example re-assembled them from scratch.
// RunSpec collapses those into a single flat spec with one env/CLI merge
// path (util::CliFlags::merge_env + add_run_flags below).  The legacy
// structs remain the internal representation: to_managed()/to_trace()/
// to_system_sensitive() produce them verbatim, so a default RunSpec maps
// onto the exact defaults existing seeded runs depend on.
//
// A RunSpec also names *who* is running (tenant) and *how urgently*
// (priority) — the admission and fair-share inputs of service::Scheduler —
// and derived(i) stamps out per-run isolated variants (distinct seed
// stream, checkpoint dir, obs artifact paths) so a batch of concurrent
// runs stays deterministic and collision-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pragma/amr/trace.hpp"
#include "pragma/core/managed_run.hpp"
#include "pragma/core/system_sensitive.hpp"
#include "pragma/core/trace_runner.hpp"
#include "pragma/grid/cluster.hpp"
#include "pragma/res/accountant.hpp"
#include "pragma/util/cli.hpp"
#include "pragma/util/status.hpp"

namespace pragma::service {

/// What a submitted run executes.
enum class WorkloadKind {
  kManaged,          ///< full managed execution (core::ManagedRun)
  kTraceReplay,      ///< partitioning-strategy replay (core::TraceRunner)
  kSystemSensitive,  ///< the Table 5 experiment (core::system_sensitive)
  kCustom,           ///< caller-supplied callable (tests, embeddings)
};

[[nodiscard]] const char* to_string(WorkloadKind kind);

/// A scheduled node failure for managed runs (ManagedRun::schedule_failure).
struct FailurePlan {
  double at_s = 0.0;
  grid::NodeId node = 0;
  double downtime_s = 0.0;  ///< negative = permanent
};

/// Handed to kCustom workloads.  `cancel_requested` is the cooperative
/// cancellation probe; long workloads should poll it between work items.
struct RunContext {
  std::function<bool()> cancel_requested;
};

struct RunSpec {
  // ---- identity & scheduling ------------------------------------------
  std::string name = "run";
  std::string tenant = "default";
  /// Larger runs first within a tenant; ties break FIFO.
  int priority = 0;
  WorkloadKind kind = WorkloadKind::kManaged;

  // ---- application & cluster ------------------------------------------
  amr::Rm3dConfig app;
  /// Control-network namespace: prefixes every agent port and topic (see
  /// ManagedRunConfig::app_name for the byte-compatibility caveat).
  std::string app_name = "rm3d";
  std::size_t nprocs = 16;
  /// Node-speed heterogeneity (0 = homogeneous Blue-Horizon-like nodes).
  double capacity_spread = 0.0;
  /// Multi-site federation: >1 builds a federated cluster of
  /// nprocs/sites nodes per site joined by a wan_mbps WAN link.
  std::size_t sites = 1;
  double wan_mbps = 20.0;
  bool with_background_load = false;
  grid::LoadGeneratorConfig load;

  // ---- management policy ----------------------------------------------
  bool system_sensitive = false;
  bool proactive = false;
  monitor::CapacityWeights weights{0.8, 0.1, 0.1};
  monitor::ResourceMonitorConfig monitor;
  core::ExecModelConfig exec;
  core::MetaPartitionerConfig meta;
  double agent_period_s = 2.0;
  double load_event_threshold = 0.85;
  std::uint64_t seed = 40;
  core::FaultToleranceConfig ft;
  core::PersistenceConfig persist;
  double modeled_partition_s_per_cell = 0.0;
  obs::ObsConfig obs;
  /// Per-run resource limits (0 = unlimited), enforced by the scheduler
  /// or worker when a res::ResourceAccountant is wired in: a kill-action
  /// violator is shed with Status::resource_exhausted (carrying the
  /// ladder's retry-after hint), a throttle-action one finishes slowed.
  /// A default (empty) budget runs byte-identically to pre-budget code.
  res::ResourceBudget budget;

  // ---- replay / system-sensitive workloads ----------------------------
  /// The adaptation trace to replay (kTraceReplay / kSystemSensitive).
  /// Shared so that many concurrent runs replay one trace without copies.
  std::shared_ptr<const amr::AdaptationTrace> trace;
  /// "adaptive" (octant-driven meta-partitioner) or a partitioner name.
  std::string strategy = "adaptive";
  int canonical_grain = 2;
  std::vector<double> targets;  ///< empty = equal shares
  double stale_weight = 0.375;
  double repartition_threshold = 0.20;
  /// Rasterization threads (1 = serial, bitwise-stable path).
  int threads = 1;
  bool dynamic_capacities = false;  ///< kSystemSensitive only
  /// Filled by the service (Runtime) so concurrent replays of the same
  /// trace coalesce their work-grid rasterization; user code normally
  /// leaves it null.
  partition::WorkGridCache* workgrid_cache = nullptr;

  // ---- failure injection (kManaged) -----------------------------------
  std::vector<FailurePlan> failures;
  /// >0 starts the random failure/recovery process (mtbf/mttr seconds).
  double random_mtbf_s = 0.0;
  double random_mttr_s = 0.0;

  // ---- custom workload -------------------------------------------------
  std::function<util::Status(RunContext&)> custom;

  /// Exact legacy-config equivalents (field-for-field, so a default
  /// RunSpec reproduces the historical defaults byte-for-byte).
  [[nodiscard]] core::ManagedRunConfig to_managed() const;
  [[nodiscard]] core::TraceRunConfig to_trace() const;
  [[nodiscard]] core::SystemSensitiveConfig to_system_sensitive() const;

  /// Logical-run identity for journal recovery dedupe:
  /// "<name>|<tenant>|<kind>|<seed>".  derived(i) specs have distinct
  /// keys (distinct name + seed stream), so a retried admission of the
  /// same logical run collapses to one journal entry while a batch of
  /// derived runs does not.
  [[nodiscard]] std::string journal_key() const;

  /// A per-run isolated variant for concurrent batches: "<name>-<i>", a
  /// distinct deterministic seed stream, its own checkpoint directory and
  /// obs artifact paths.  derived(i) of equal specs are equal — the basis
  /// of the N-concurrent == N-serial reproducibility guarantee.
  [[nodiscard]] RunSpec derived(std::size_t index) const;
};

// Deprecated spellings: the pre-service config structs, re-exported so
// code written against pragma::service keeps compiling while it migrates
// to RunSpec.  New code should not use these.
using ManagedRunConfig = core::ManagedRunConfig;
using TraceRunConfig = core::TraceRunConfig;
using SystemSensitiveConfig = core::SystemSensitiveConfig;
using FaultToleranceConfig = core::FaultToleranceConfig;
using ObsConfig = obs::ObsConfig;
using ResourceMonitorConfig = monitor::ResourceMonitorConfig;

/// Build the cluster a spec describes: federated when sites > 1,
/// heterogeneous when capacity_spread > 0 (same Rng stream as ManagedRun),
/// homogeneous otherwise.
[[nodiscard]] grid::Cluster build_cluster(const RunSpec& spec);

/// Register the shared run flags (--procs, --steps, --seed, ...) with
/// defaults taken from `defaults`.  Pair with flags.merge_env("PRAGMA")
/// and spec_from_flags for the one env < CLI merge path every binary
/// shares.
void add_run_flags(util::CliFlags& flags, const RunSpec& defaults);

/// Read the shared run flags back over `base`.
[[nodiscard]] RunSpec spec_from_flags(const util::CliFlags& flags,
                                      RunSpec base = {});

}  // namespace pragma::service
