#include "pragma/service/workbench.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pragma/service/admission.hpp"

namespace pragma::service {

namespace {

/// The wait before one retry round: the shed hint when present,
/// otherwise the exponential schedule; always capped.
int retry_wait_ms(int hint_ms, int next_wait_ms, int cap_ms) {
  return std::min(hint_ms > 0 ? hint_ms : next_wait_ms, cap_ms);
}

}  // namespace

util::Expected<RunHandle> submit_with_retry(Runtime& runtime, RunSpec spec,
                                            RetryBackoff backoff) {
  const int cap_ms = std::max(backoff.cap_ms, 1);
  int next_wait_ms = std::max(backoff.base_ms, 1);
  util::Expected<RunHandle> handle = runtime.submit(spec);
  for (int attempt = 1; !handle && attempt < backoff.max_attempts;
       ++attempt) {
    if (!ShedInfo::retryable(handle.status()))
      break;  // not backpressure — retrying cannot help
    const ShedInfo info = shed_info(handle.status());
    const int wait_ms = retry_wait_ms(info.retry_after_ms, next_wait_ms,
                                      cap_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    next_wait_ms = std::min(next_wait_ms * 2, cap_ms);
    handle = runtime.submit(spec);
  }
  return handle;
}

std::vector<util::Expected<RunHandle>> submit_batch_with_retry(
    Runtime& runtime, std::vector<RunSpec> specs, RetryBackoff backoff) {
  const int cap_ms = std::max(backoff.cap_ms, 1);
  int next_wait_ms = std::max(backoff.base_ms, 1);
  // The batch is submitted from a kept copy: shed slots need their spec
  // again on the next round.
  std::vector<util::Expected<RunHandle>> results =
      runtime.submit_batch(specs);
  for (int attempt = 1; attempt < backoff.max_attempts; ++attempt) {
    std::vector<std::size_t> shed;
    int hint_ms = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i] || !ShedInfo::retryable(results[i].status())) continue;
      shed.push_back(i);
      hint_ms = std::max(hint_ms, shed_info(results[i].status()).retry_after_ms);
    }
    if (shed.empty()) break;
    const int wait_ms = retry_wait_ms(hint_ms, next_wait_ms, cap_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    next_wait_ms = std::min(next_wait_ms * 2, cap_ms);
    std::vector<RunSpec> again;
    again.reserve(shed.size());
    for (const std::size_t i : shed) again.push_back(specs[i]);
    std::vector<util::Expected<RunHandle>> redo =
        runtime.submit_batch(std::move(again));
    for (std::size_t k = 0; k < shed.size(); ++k)
      results[shed[k]] = std::move(redo[k]);
  }
  return results;
}

namespace {

grid::Cluster bench_cluster(const RunSpec& spec) {
  if (spec.capacity_spread > 0.0) {
    util::Rng rng(spec.seed, 0);
    return grid::ClusterBuilder::heterogeneous(
        spec.nprocs, rng, 0.5, 512.0, 100.0, 150e-6, spec.capacity_spread);
  }
  return grid::ClusterBuilder::homogeneous(spec.nprocs);
}

}  // namespace

Workbench::Workbench(RunSpec spec, policy::PolicyBase policies)
    : spec_(std::move(spec)),
      cluster_(bench_cluster(spec_)),
      failures_(simulator_, cluster_),
      monitor_(simulator_, cluster_, spec_.monitor, util::Rng(spec_.seed, 2)),
      policies_(std::move(policies)) {
  if (spec_.with_background_load) {
    loadgen_ = std::make_unique<grid::LoadGenerator>(
        simulator_, cluster_, spec_.load, util::Rng(spec_.seed, 1));
    loadgen_->start();
  }
}

void Workbench::start_monitoring() {
  if (monitoring_) return;
  monitoring_ = true;
  monitor_.start();
}

agents::Environment& Workbench::environment() {
  if (!environment_) {
    mcs_ = std::make_unique<agents::Mcs>(simulator_, policies_);
    agents::EnvTemplate blueprint;
    blueprint.name = "workbench";
    blueprint.provides["arch"] = policy::Value{std::string("linux-cluster")};
    blueprint.provides["nodes"] =
        policy::Value{static_cast<double>(spec_.nprocs)};
    mcs_->registry().register_template(blueprint);

    agents::AppSpec app;
    app.name = spec_.app_name;
    app.requirements["arch"] = policy::Value{std::string("linux-cluster")};
    app.sample_period_s = spec_.agent_period_s;
    for (std::size_t c = 0; c < spec_.nprocs; ++c) {
      std::string component = "c";
      component += std::to_string(c);
      app.components.push_back(std::move(component));
    }
    environment_ = mcs_->build(std::move(app));
  }
  return *environment_;
}

void Workbench::advance(double seconds) {
  simulator_.run(simulator_.now() + seconds);
}

}  // namespace pragma::service
