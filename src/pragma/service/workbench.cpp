#include "pragma/service/workbench.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "pragma/service/journal.hpp"

namespace pragma::service {

util::Expected<RunHandle> submit_with_retry(Runtime& runtime, RunSpec spec,
                                            RetryBackoff backoff) {
  const int cap_ms = std::max(backoff.cap_ms, 1);
  int next_wait_ms = std::max(backoff.base_ms, 1);
  util::Expected<RunHandle> handle = runtime.submit(spec);
  for (int attempt = 1; !handle && attempt < backoff.max_attempts;
       ++attempt) {
    const util::StatusCode code = handle.status().code();
    if (code != util::StatusCode::kUnavailable &&
        code != util::StatusCode::kResourceExhausted)
      break;  // not backpressure — retrying cannot help
    const int hint = retry_after_ms(handle.status());
    const int wait_ms = std::min(hint > 0 ? hint : next_wait_ms, cap_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    next_wait_ms = std::min(next_wait_ms * 2, cap_ms);
    handle = runtime.submit(spec);
  }
  return handle;
}

namespace {

grid::Cluster bench_cluster(const RunSpec& spec) {
  if (spec.capacity_spread > 0.0) {
    util::Rng rng(spec.seed, 0);
    return grid::ClusterBuilder::heterogeneous(
        spec.nprocs, rng, 0.5, 512.0, 100.0, 150e-6, spec.capacity_spread);
  }
  return grid::ClusterBuilder::homogeneous(spec.nprocs);
}

}  // namespace

Workbench::Workbench(RunSpec spec, policy::PolicyBase policies)
    : spec_(std::move(spec)),
      cluster_(bench_cluster(spec_)),
      failures_(simulator_, cluster_),
      monitor_(simulator_, cluster_, spec_.monitor, util::Rng(spec_.seed, 2)),
      policies_(std::move(policies)) {
  if (spec_.with_background_load) {
    loadgen_ = std::make_unique<grid::LoadGenerator>(
        simulator_, cluster_, spec_.load, util::Rng(spec_.seed, 1));
    loadgen_->start();
  }
}

void Workbench::start_monitoring() {
  if (monitoring_) return;
  monitoring_ = true;
  monitor_.start();
}

agents::Environment& Workbench::environment() {
  if (!environment_) {
    mcs_ = std::make_unique<agents::Mcs>(simulator_, policies_);
    agents::EnvTemplate blueprint;
    blueprint.name = "workbench";
    blueprint.provides["arch"] = policy::Value{std::string("linux-cluster")};
    blueprint.provides["nodes"] =
        policy::Value{static_cast<double>(spec_.nprocs)};
    mcs_->registry().register_template(blueprint);

    agents::AppSpec app;
    app.name = spec_.app_name;
    app.requirements["arch"] = policy::Value{std::string("linux-cluster")};
    app.sample_period_s = spec_.agent_period_s;
    for (std::size_t c = 0; c < spec_.nprocs; ++c) {
      std::string component = "c";
      component += std::to_string(c);
      app.components.push_back(std::move(component));
    }
    environment_ = mcs_->build(std::move(app));
  }
  return *environment_;
}

void Workbench::advance(double seconds) {
  simulator_.run(simulator_.now() + seconds);
}

}  // namespace pragma::service
