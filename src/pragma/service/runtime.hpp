// pragma::Runtime — the front door of the service layer.
//
// Owns the wiring every example used to duplicate: the scheduler, the
// process-wide obs setup, the default RunSpec (grid shape, monitor
// cadence), and the per-trace WorkGridCache map that lets concurrent
// replays of one adaptation trace coalesce their rasterization work.
//
//   auto rt = pragma::Runtime::Builder{}
//                 .grid({.nprocs = 32, .capacity_spread = 0.35})
//                 .monitor(monitor::ResourceMonitorConfig{})
//                 .obs(obs_config)
//                 .build();
//   RunSpec spec = rt.spec();          // defaults pre-applied
//   spec.trace = trace;
//   spec.kind = WorkloadKind::kTraceReplay;
//   auto handle = rt.submit(spec);     // async; Expected<RunHandle>
//   const RunOutcome& out = handle.value().wait();
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "pragma/service/journal.hpp"
#include "pragma/service/run_spec.hpp"
#include "pragma/service/scheduler.hpp"
#include "pragma/service/worker.hpp"

namespace pragma::service {

/// The machine every run of this runtime targets by default.
struct GridSpec {
  std::size_t nprocs = 16;
  double capacity_spread = 0.0;  ///< 0 = homogeneous
  std::size_t sites = 1;         ///< >1 = federated over a WAN
  double wan_mbps = 20.0;
  std::uint64_t seed = 40;
};

class Runtime {
  struct Options {
    RunSpec defaults;
    std::optional<GridSpec> grid;
    std::optional<monitor::ResourceMonitorConfig> monitor;
    std::optional<obs::ObsConfig> obs;
    SchedulerConfig scheduler;
    DistributedConfig distributed;
    JournalConfig journal;
    util::ThreadPool* pool = nullptr;
  };

 public:
  class Builder {
   public:
    /// Default machine shape for submitted runs.
    Builder& grid(GridSpec grid) {
      options_.grid = grid;
      return *this;
    }
    /// Default NWS monitor cadence/noise/history.
    Builder& monitor(monitor::ResourceMonitorConfig config) {
      options_.monitor = config;
      return *this;
    }
    /// Process-wide observability, applied (merge-enable) at build().
    Builder& obs(obs::ObsConfig config) {
      options_.obs = config;
      return *this;
    }
    /// Wholesale default RunSpec; grid()/monitor()/obs() overlay it.
    Builder& defaults(RunSpec spec) {
      options_.defaults = std::move(spec);
      return *this;
    }
    /// Concurrent runs in flight (0 = executing pool's size).
    Builder& workers(std::size_t count) {
      options_.scheduler.workers = count;
      return *this;
    }
    Builder& queue_capacity(std::size_t capacity) {
      options_.scheduler.queue_capacity = capacity;
      return *this;
    }
    /// Pool the runs execute on (must outlive the runtime); default
    /// util::shared_pool().
    Builder& pool(util::ThreadPool* pool) {
      options_.pool = pool;
      return *this;
    }
    /// Run bursts over the elastic coordinator/worker control plane
    /// instead of the in-process scheduler.  Off by default; when
    /// `config.enabled` is false the scheduler path is untouched and
    /// byte-identical to a runtime built without this call.
    Builder& distributed(DistributedConfig config) {
      // Keep accountant()/autoscale() settings regardless of call order.
      if (config.accountant == nullptr)
        config.accountant = options_.distributed.accountant;
      if (!config.autoscale.enabled)
        config.autoscale = options_.distributed.autoscale;
      options_.distributed = std::move(config);
      return *this;
    }
    /// Crash-durable admission journal.  With `config.enabled` every
    /// admitted spec is durably appended before submit() returns, and
    /// build() replays the journal: pending runs from a killed process
    /// are resubmitted (with checkpoint resume forced on, so reruns fast
    /// -forward instead of recomputing) before the first new submission.
    /// Off by default; the off path is byte-identical to a runtime built
    /// without this call.
    Builder& journal(JournalConfig config) {
      options_.journal = std::move(config);
      return *this;
    }
    /// Per-tenant token-bucket admission rate limit (off by default).
    Builder& rate_limit(TenantRateLimit limit) {
      options_.scheduler.rate_limit = limit;
      return *this;
    }
    /// Per-run resource accounting and budget enforcement (off by
    /// default).  The accountant is shared by the scheduler path and the
    /// distributed path; it is not owned and must outlive the runtime.
    /// Null (the default) is the byte-identical pre-accounting path.
    Builder& accountant(res::ResourceAccountant* accountant) {
      options_.scheduler.accountant = accountant;
      options_.distributed.accountant = accountant;
      return *this;
    }
    /// Predictive worker-pool autoscaling for distributed bursts (off by
    /// default; requires distributed({.enabled = true})).
    Builder& autoscale(res::AutoscaleConfig config) {
      options_.distributed.autoscale = config;
      return *this;
    }
    [[nodiscard]] Runtime build() { return Runtime(std::move(options_)); }

   private:
    Options options_;
  };

  /// A copy of the runtime's default spec — start here, tweak, submit.
  [[nodiscard]] RunSpec spec() const { return defaults_; }

  /// Admit a run for asynchronous execution.  Replay specs sharing a
  /// trace are pointed at one work-grid cache so their rasterization
  /// coalesces.  Sheds with Status::unavailable under backpressure.
  [[nodiscard]] util::Expected<RunHandle> submit(RunSpec spec);

  /// Admit N runs in one call.  Results come back index-aligned with the
  /// input; each slot is independently a handle or a shed status (see
  /// ShedInfo for the structured retry classification).  On the
  /// scheduler path the batch is journaled as ONE sealed frame with one
  /// fsync and identical derived specs inside the batch coalesce onto a
  /// single execution — submit_batch is the high-throughput front door.
  /// A batch of one is byte-identical to submit().
  [[nodiscard]] std::vector<util::Expected<RunHandle>> submit_batch(
      std::vector<RunSpec> specs);

  /// Submit and join: the synchronous convenience path.  Admission
  /// rejection comes back as a kFailed outcome carrying the status.
  RunOutcome run(RunSpec spec);

  /// Execute a batch of runs and return their outcomes in order.  Built
  /// on submit_batch: with distributed mode off (the default) the burst
  /// goes through the scheduler's batched admission, then joins in
  /// order.  With Builder::distributed({.enabled = true, ...}) the burst
  /// is deployed on a fresh DistributedService: a coordinator plus
  /// `distributed.workers` workers on one deterministic control network.
  /// Admission shedding surfaces as kFailed outcomes carrying the shed
  /// status either way.
  [[nodiscard]] std::vector<RunOutcome> run_burst(std::vector<RunSpec> specs);

  /// Block until every admitted run has finished.
  void drain() { scheduler_.drain(); }

  [[nodiscard]] SchedulerStats stats() const { return scheduler_.stats(); }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }

  /// The admission journal (null when journaling is off or its directory
  /// could not be opened — the runtime then serves without durability).
  [[nodiscard]] Journal* journal() { return journal_.get(); }
  /// What startup recovery replayed from the journal.
  [[nodiscard]] const JournalRecovery& recovered() const { return recovery_; }
  /// Handles of the recovered runs resubmitted at build() (in journal
  /// sequence order); wait on them like any other submission.
  [[nodiscard]] std::vector<RunHandle>& recovered_handles() {
    return recovered_handles_;
  }

  /// The default machine, built on first use (examples that model
  /// placement directly, e.g. the federation demo, read it).
  [[nodiscard]] const grid::Cluster& cluster();

 private:
  explicit Runtime(Options options);

  /// Construct + open the journal (null when disabled); recovery results
  /// land in *recovery.  An unopenable journal logs loudly and returns
  /// null — the runtime keeps serving without durability rather than
  /// refusing to start.
  [[nodiscard]] static std::unique_ptr<Journal> make_journal(
      JournalConfig config, JournalRecovery* recovery);

  /// Point replay specs sharing a trace at one WorkGridCache so their
  /// rasterization coalesces (shared by submit and submit_batch).
  void wire_cache(RunSpec& spec);

  RunSpec defaults_;
  DistributedConfig distributed_;
  std::optional<grid::Cluster> cluster_;
  // Declared before scheduler_ so caches outlive in-flight runs during
  // destruction (members destroy in reverse order).
  std::mutex caches_mu_;
  std::map<const amr::AdaptationTrace*,
           std::unique_ptr<partition::WorkGridCache>>
      caches_;
  // Journal before scheduler_: the scheduler holds a raw pointer and
  // tombstones terminal runs during its own destruction.
  JournalRecovery recovery_;
  std::unique_ptr<Journal> journal_;
  std::vector<RunHandle> recovered_handles_;
  Scheduler scheduler_;
};

}  // namespace pragma::service

namespace pragma {
// The facade names examples and embedders use.
using service::GridSpec;       // NOLINT(misc-unused-using-decls)
using service::RunHandle;      // NOLINT(misc-unused-using-decls)
using service::RunOutcome;     // NOLINT(misc-unused-using-decls)
using service::RunSpec;        // NOLINT(misc-unused-using-decls)
using service::Runtime;        // NOLINT(misc-unused-using-decls)
using service::WorkloadKind;   // NOLINT(misc-unused-using-decls)
}  // namespace pragma
