#include "pragma/service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <unordered_map>

#include "pragma/io/checkpoint.hpp"
#include "pragma/io/serial.hpp"
#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/service/admission.hpp"
#include "pragma/util/crc32.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalPrefix = "wal-";
constexpr const char* kWalSuffix = ".pragma-wal";
constexpr const char* kTmpSuffix = ".tmp";

obs::Counter& appends_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.appends");
  return counter;
}
obs::Counter& batch_appends_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.batch_appends");
  return counter;
}
obs::Counter& tombstones_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.tombstones");
  return counter;
}
obs::Counter& compactions_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.compactions");
  return counter;
}
obs::Counter& shed_saturated_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.shed_saturated");
  return counter;
}
obs::Counter& degraded_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.degraded_events");
  return counter;
}
obs::Counter& recovered_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.journal.recovered_runs");
  return counter;
}
obs::Histogram& fsync_histogram() {
  static obs::Histogram& histogram = obs::metrics().histogram(
      "service.journal.fsync_seconds",
      obs::HistogramOptions::exponential(1e-5, 4.0, 12));
  return histogram;
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  std::memcpy(out, &value, sizeof value);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  std::memcpy(&value, in, sizeof value);
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  std::memcpy(&value, in, sizeof value);
  return value;
}

/// Parse a generation number out of "wal-<digits>.pragma-wal"; 0 = not a
/// journal file name.
std::uint64_t generation_of(const std::string& filename) {
  const std::size_t prefix_len = std::strlen(kWalPrefix);
  const std::size_t suffix_len = std::strlen(kWalSuffix);
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kWalPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kWalSuffix) !=
      0)
    return 0;
  std::uint64_t generation = 0;
  for (std::size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return 0;
    if (generation > (UINT64_MAX - 9) / 10) return 0;
    generation = generation * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return generation;
}

/// EINTR-safe full write of `bytes` to `fd`.
util::Status write_all(int fd, const std::uint8_t* bytes, std::size_t size,
                       const std::string& what) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::internal("write failed for " + what + ": " +
                                    std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return util::Status::ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Retry-after hint plumbing
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kRetryAfterToken = " [retry_after_ms=";
}  // namespace

util::Status unavailable_with_retry_after(const std::string& message,
                                          int retry_after_ms) {
  if (retry_after_ms < 0) retry_after_ms = 0;
  return util::Status::unavailable(message + kRetryAfterToken +
                                   std::to_string(retry_after_ms) + "]");
}

util::Status resource_exhausted_with_retry_after(const std::string& message,
                                                 int retry_after_ms) {
  if (retry_after_ms < 0) retry_after_ms = 0;
  return util::Status::resource_exhausted(message + kRetryAfterToken +
                                          std::to_string(retry_after_ms) +
                                          "]");
}

int retry_after_ms(const util::Status& status) {
  if (status.code() != util::StatusCode::kUnavailable &&
      status.code() != util::StatusCode::kResourceExhausted)
    return -1;
  const std::string& message = status.message();
  const std::size_t start = message.rfind(kRetryAfterToken);
  if (start == std::string::npos) return -1;
  std::size_t pos = start + std::strlen(kRetryAfterToken);
  long value = 0;
  bool any = false;
  while (pos < message.size() && message[pos] >= '0' && message[pos] <= '9') {
    if (value > (INT32_MAX - 9) / 10) return -1;
    value = value * 10 + (message[pos] - '0');
    any = true;
    ++pos;
  }
  if (!any || pos >= message.size() || message[pos] != ']') return -1;
  return static_cast<int>(value);
}

// ---------------------------------------------------------------------------
// File / record framing
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_journal_file_header() {
  std::vector<std::uint8_t> out(kJournalFileHeaderBytes);
  std::memcpy(out.data(), kJournalMagic, sizeof kJournalMagic);
  put_u32(out.data() + 8, kJournalVersion);
  put_u32(out.data() + 12, util::crc32(out.data(), 12));
  return out;
}

std::vector<std::uint8_t> encode_journal_record(
    JournalRecordType type, std::uint64_t seq,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(kJournalRecordHeaderBytes + payload.size());
  std::memcpy(out.data(), kJournalRecordMagic, sizeof kJournalRecordMagic);
  put_u32(out.data() + 4, static_cast<std::uint32_t>(type));
  std::uint64_t value = seq;
  std::memcpy(out.data() + 8, &value, sizeof value);
  value = payload.size();
  std::memcpy(out.data() + 16, &value, sizeof value);
  put_u32(out.data() + 24, util::crc32(payload.data(), payload.size()));
  put_u32(out.data() + 28, util::crc32(out.data(), 28));
  std::memcpy(out.data() + kJournalRecordHeaderBytes, payload.data(),
              payload.size());
  return out;
}

std::vector<std::uint8_t> encode_journal_batch_record(
    const std::vector<JournalRecord>& items) {
  // Payload: u32 count | per item: u64 seq | u64 payload size | payload.
  std::size_t total = 4;
  for (const JournalRecord& item : items) total += 16 + item.payload.size();
  std::vector<std::uint8_t> payload(total);
  put_u32(payload.data(), static_cast<std::uint32_t>(items.size()));
  std::size_t pos = 4;
  for (const JournalRecord& item : items) {
    std::uint64_t value = item.seq;
    std::memcpy(payload.data() + pos, &value, sizeof value);
    value = item.payload.size();
    std::memcpy(payload.data() + pos + 8, &value, sizeof value);
    std::memcpy(payload.data() + pos + 16, item.payload.data(),
                item.payload.size());
    pos += 16 + item.payload.size();
  }
  return encode_journal_record(JournalRecordType::kBatch,
                               items.empty() ? 0 : items.front().seq,
                               payload);
}

JournalScan scan_journal_file(const std::uint8_t* bytes, std::size_t size,
                              std::uint64_t max_payload_bytes) {
  JournalScan scan;
  if (size < kJournalFileHeaderBytes) {
    scan.tail = util::Status::data_loss(
        "journal file shorter than its 16-byte header (" +
        std::to_string(size) + " bytes)");
    return scan;
  }
  if (std::memcmp(bytes, kJournalMagic, sizeof kJournalMagic) != 0) {
    scan.tail = util::Status::invalid("bad journal file magic");
    return scan;
  }
  if (util::crc32(bytes, 12) != get_u32(bytes + 12)) {
    scan.tail = util::Status::data_loss("journal file header CRC mismatch");
    return scan;
  }
  if (get_u32(bytes + 8) != kJournalVersion) {
    scan.tail = util::Status::unimplemented(
        "journal format version " + std::to_string(get_u32(bytes + 8)));
    return scan;
  }
  std::size_t pos = kJournalFileHeaderBytes;
  scan.valid_bytes = pos;
  while (pos < size) {
    const std::size_t remaining = size - pos;
    if (remaining < kJournalRecordHeaderBytes) {
      scan.tail = util::Status::data_loss("torn record header at offset " +
                                          std::to_string(pos));
      return scan;
    }
    const std::uint8_t* frame = bytes + pos;
    if (std::memcmp(frame, kJournalRecordMagic, sizeof kJournalRecordMagic) !=
        0) {
      scan.tail = util::Status::data_loss("bad record magic at offset " +
                                          std::to_string(pos));
      return scan;
    }
    if (util::crc32(frame, 28) != get_u32(frame + 28)) {
      scan.tail = util::Status::data_loss("record header CRC mismatch at "
                                          "offset " +
                                          std::to_string(pos));
      return scan;
    }
    const std::uint32_t raw_type = get_u32(frame + 4);
    if (raw_type != static_cast<std::uint32_t>(JournalRecordType::kPending) &&
        raw_type !=
            static_cast<std::uint32_t>(JournalRecordType::kTombstone) &&
        raw_type != static_cast<std::uint32_t>(JournalRecordType::kBatch)) {
      scan.tail = util::Status::invalid("unknown record type " +
                                        std::to_string(raw_type));
      return scan;
    }
    const std::uint64_t declared = get_u64(frame + 16);
    if (declared > max_payload_bytes) {
      scan.tail = util::Status::out_of_range(
          "declared record payload of " + std::to_string(declared) +
          " bytes exceeds cap of " + std::to_string(max_payload_bytes));
      return scan;
    }
    if (declared > remaining - kJournalRecordHeaderBytes) {
      scan.tail = util::Status::data_loss(
          "torn record payload at offset " + std::to_string(pos) +
          " (declared " + std::to_string(declared) + " bytes)");
      return scan;
    }
    const std::uint8_t* payload = frame + kJournalRecordHeaderBytes;
    if (util::crc32(payload, declared) != get_u32(frame + 24)) {
      scan.tail = util::Status::data_loss(
          "record payload CRC mismatch at offset " + std::to_string(pos));
      return scan;
    }
    if (raw_type == static_cast<std::uint32_t>(JournalRecordType::kBatch)) {
      // Expand the batch into its individual pending records.  The frame
      // passed both CRCs, so a malformed interior means a corrupted-yet-
      // CRC-consistent image (or an encoder bug): stop the scan at this
      // frame's edge without surfacing any of its partial records.
      std::vector<JournalRecord> items;
      const std::uint8_t* cursor = payload;
      std::size_t left = static_cast<std::size_t>(declared);
      bool well_formed = left >= 4;
      std::uint32_t count = 0;
      if (well_formed) {
        count = get_u32(cursor);
        cursor += 4;
        left -= 4;
      }
      for (std::uint32_t k = 0; well_formed && k < count; ++k) {
        if (left < 16) {
          well_formed = false;
          break;
        }
        const std::uint64_t item_seq = get_u64(cursor);
        const std::uint64_t item_size = get_u64(cursor + 8);
        cursor += 16;
        left -= 16;
        if (item_size > left) {
          well_formed = false;
          break;
        }
        JournalRecord item;
        item.type = JournalRecordType::kPending;
        item.seq = item_seq;
        item.payload.assign(cursor, cursor + item_size);
        items.push_back(std::move(item));
        cursor += item_size;
        left -= static_cast<std::size_t>(item_size);
      }
      if (!well_formed || left != 0) {
        scan.tail = util::Status::data_loss(
            "malformed batch record interior at offset " +
            std::to_string(pos));
        return scan;
      }
      for (JournalRecord& item : items)
        scan.records.push_back(std::move(item));
    } else {
      JournalRecord record;
      record.type = static_cast<JournalRecordType>(raw_type);
      record.seq = get_u64(frame + 8);
      record.payload.assign(payload, payload + declared);
      scan.records.push_back(std::move(record));
    }
    pos += kJournalRecordHeaderBytes + static_cast<std::size_t>(declared);
    scan.valid_bytes = pos;
  }
  return scan;
}

JournalScan scan_journal_file(const std::vector<std::uint8_t>& bytes,
                              std::uint64_t max_payload_bytes) {
  return scan_journal_file(bytes.data(), bytes.size(), max_payload_bytes);
}

// ---------------------------------------------------------------------------
// RunSpec payload codec (version 1)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_run_spec(const RunSpec& spec) {
  io::ByteWriter w;
  w.u32(kRunSpecPayloadVersion);

  // identity & scheduling
  w.str(spec.name);
  w.str(spec.tenant);
  w.i32(spec.priority);
  w.u8(static_cast<std::uint8_t>(spec.kind));

  // application & cluster
  w.i32(spec.app.base_dims.x);
  w.i32(spec.app.base_dims.y);
  w.i32(spec.app.base_dims.z);
  w.i32(spec.app.max_levels);
  w.i32(spec.app.ratio);
  w.i32(spec.app.regrid_interval);
  w.i32(spec.app.coarse_steps);
  w.u64(spec.app.seed);
  w.u32(static_cast<std::uint32_t>(spec.app.thresholds.size()));
  for (double t : spec.app.thresholds) w.f64(t);
  w.f64(spec.app.cluster.efficiency);
  w.i32(spec.app.cluster.min_width);
  w.i64(spec.app.cluster.max_box_cells);
  w.i32(spec.app.cluster.max_depth);
  w.str(spec.app_name);
  w.u64(spec.nprocs);
  w.f64(spec.capacity_spread);
  w.u64(spec.sites);
  w.f64(spec.wan_mbps);
  w.u8(spec.with_background_load ? 1 : 0);
  w.f64(spec.load.update_period_s);
  w.f64(spec.load.mean_cpu_load);
  w.f64(spec.load.reversion);
  w.f64(spec.load.volatility);
  w.f64(spec.load.burst_probability);
  w.f64(spec.load.burst_load);
  w.f64(spec.load.burst_duration_s);
  w.f64(spec.load.mean_link_utilization);
  w.f64(spec.load.node_bias_spread);

  // management policy
  w.u8(spec.system_sensitive ? 1 : 0);
  w.u8(spec.proactive ? 1 : 0);
  w.f64(spec.weights.cpu);
  w.f64(spec.weights.memory);
  w.f64(spec.weights.bandwidth);
  w.f64(spec.monitor.period_s);
  w.f64(spec.monitor.noise);
  w.u64(spec.monitor.history);
  w.f64(spec.exec.flops_per_cell_update);
  w.f64(spec.exec.bytes_per_face_cell);
  w.f64(spec.exec.bytes_per_cell);
  w.f64(spec.exec.message_latency_s);
  w.f64(spec.exec.partition_time_scale);
  w.f64(spec.exec.redistribution_overhead);
  w.i32(spec.meta.hysteresis);
  w.f64(spec.agent_period_s);
  w.f64(spec.load_event_threshold);
  w.u64(spec.seed);

  // fault tolerance
  w.u8(spec.ft.enabled ? 1 : 0);
  w.f64(spec.ft.channel.drop_probability);
  w.f64(spec.ft.channel.duplicate_probability);
  w.f64(spec.ft.channel.jitter_s);
  w.f64(spec.ft.reliable.timeout_s);
  w.f64(spec.ft.reliable.backoff_factor);
  w.i32(spec.ft.reliable.max_attempts);
  w.str(spec.ft.heartbeat.topic);
  w.f64(spec.ft.heartbeat.period_s);
  w.i32(spec.ft.heartbeat.suspect_missed);
  w.i32(spec.ft.heartbeat.confirm_missed);
  w.f64(spec.ft.staleness.fresh_age_s);
  w.f64(spec.ft.staleness.decay_tau_s);
  w.f64(spec.ft.staleness.prior_fraction);
  w.f64(spec.ft.checkpoint_interval_s);
  w.f64(spec.ft.checkpoint_cost_factor);
  w.f64(spec.ft.modeled_partition_s_per_cell);

  // persistence
  w.u8(spec.persist.enabled ? 1 : 0);
  w.str(spec.persist.dir);
  w.u8(spec.persist.resume ? 1 : 0);
  w.f64(spec.persist.checkpoint_interval_s);
  w.i32(spec.persist.keep_last_n);
  w.f64(spec.persist.modeled_partition_s_per_cell);
  w.i32(spec.persist.halt_after_steps);
  w.f64(spec.modeled_partition_s_per_cell);

  // replay / system-sensitive knobs
  w.str(spec.strategy);
  w.i32(spec.canonical_grain);
  w.u32(static_cast<std::uint32_t>(spec.targets.size()));
  for (double t : spec.targets) w.f64(t);
  w.f64(spec.stale_weight);
  w.f64(spec.repartition_threshold);
  w.i32(spec.threads);
  w.u8(spec.dynamic_capacities ? 1 : 0);

  // failure injection
  w.u32(static_cast<std::uint32_t>(spec.failures.size()));
  for (const FailurePlan& plan : spec.failures) {
    w.f64(plan.at_s);
    w.u64(plan.node);
    w.f64(plan.downtime_s);
  }
  w.f64(spec.random_mtbf_s);
  w.f64(spec.random_mttr_s);

  // resource budget (appended by payload version 2)
  w.f64(spec.budget.cpu_s);
  w.u64(spec.budget.mem_bytes);
  w.u64(spec.budget.io_bytes);
  w.f64(spec.budget.wall_s);
  w.u8(static_cast<std::uint8_t>(spec.budget.action));
  w.f64(spec.budget.throttle_factor);
  return w.take();
}

util::Expected<RunSpec> decode_run_spec(
    const std::vector<std::uint8_t>& payload) {
  io::ByteReader r(payload);
  const std::uint32_t version = r.u32();
  if (r.ok() && version != kRunSpecPayloadVersion &&
      version != kRunSpecPayloadVersionV1)
    return util::Status::unimplemented("run-spec payload version " +
                                       std::to_string(version));
  RunSpec spec;
  spec.name = r.str();
  spec.tenant = r.str();
  spec.priority = r.i32();
  const std::uint8_t kind = r.u8();
  if (r.ok() && kind > static_cast<std::uint8_t>(WorkloadKind::kCustom))
    r.fail("unknown workload kind " + std::to_string(kind));
  spec.kind = static_cast<WorkloadKind>(kind);

  spec.app.base_dims.x = r.i32();
  spec.app.base_dims.y = r.i32();
  spec.app.base_dims.z = r.i32();
  spec.app.max_levels = r.i32();
  spec.app.ratio = r.i32();
  spec.app.regrid_interval = r.i32();
  spec.app.coarse_steps = r.i32();
  spec.app.seed = r.u64();
  spec.app.thresholds.clear();
  const std::uint32_t n_thresholds = r.count(sizeof(double), 64);
  for (std::uint32_t i = 0; r.ok() && i < n_thresholds; ++i)
    spec.app.thresholds.push_back(r.f64());
  spec.app.cluster.efficiency = r.f64();
  spec.app.cluster.min_width = r.i32();
  spec.app.cluster.max_box_cells = r.i64();
  spec.app.cluster.max_depth = r.i32();
  spec.app_name = r.str();
  spec.nprocs = static_cast<std::size_t>(r.u64());
  spec.capacity_spread = r.f64();
  spec.sites = static_cast<std::size_t>(r.u64());
  spec.wan_mbps = r.f64();
  spec.with_background_load = r.u8() != 0;
  spec.load.update_period_s = r.f64();
  spec.load.mean_cpu_load = r.f64();
  spec.load.reversion = r.f64();
  spec.load.volatility = r.f64();
  spec.load.burst_probability = r.f64();
  spec.load.burst_load = r.f64();
  spec.load.burst_duration_s = r.f64();
  spec.load.mean_link_utilization = r.f64();
  spec.load.node_bias_spread = r.f64();

  spec.system_sensitive = r.u8() != 0;
  spec.proactive = r.u8() != 0;
  spec.weights.cpu = r.f64();
  spec.weights.memory = r.f64();
  spec.weights.bandwidth = r.f64();
  spec.monitor.period_s = r.f64();
  spec.monitor.noise = r.f64();
  spec.monitor.history = static_cast<std::size_t>(r.u64());
  spec.exec.flops_per_cell_update = r.f64();
  spec.exec.bytes_per_face_cell = r.f64();
  spec.exec.bytes_per_cell = r.f64();
  spec.exec.message_latency_s = r.f64();
  spec.exec.partition_time_scale = r.f64();
  spec.exec.redistribution_overhead = r.f64();
  spec.meta.hysteresis = r.i32();
  spec.agent_period_s = r.f64();
  spec.load_event_threshold = r.f64();
  spec.seed = r.u64();

  spec.ft.enabled = r.u8() != 0;
  spec.ft.channel.drop_probability = r.f64();
  spec.ft.channel.duplicate_probability = r.f64();
  spec.ft.channel.jitter_s = r.f64();
  spec.ft.reliable.timeout_s = r.f64();
  spec.ft.reliable.backoff_factor = r.f64();
  spec.ft.reliable.max_attempts = r.i32();
  spec.ft.heartbeat.topic = r.str();
  spec.ft.heartbeat.period_s = r.f64();
  spec.ft.heartbeat.suspect_missed = r.i32();
  spec.ft.heartbeat.confirm_missed = r.i32();
  spec.ft.staleness.fresh_age_s = r.f64();
  spec.ft.staleness.decay_tau_s = r.f64();
  spec.ft.staleness.prior_fraction = r.f64();
  spec.ft.checkpoint_interval_s = r.f64();
  spec.ft.checkpoint_cost_factor = r.f64();
  spec.ft.modeled_partition_s_per_cell = r.f64();

  spec.persist.enabled = r.u8() != 0;
  spec.persist.dir = r.str();
  spec.persist.resume = r.u8() != 0;
  spec.persist.checkpoint_interval_s = r.f64();
  spec.persist.keep_last_n = r.i32();
  spec.persist.modeled_partition_s_per_cell = r.f64();
  spec.persist.halt_after_steps = r.i32();
  spec.modeled_partition_s_per_cell = r.f64();

  spec.strategy = r.str();
  spec.canonical_grain = r.i32();
  spec.targets.clear();
  const std::uint32_t n_targets = r.count(sizeof(double), 4096);
  for (std::uint32_t i = 0; r.ok() && i < n_targets; ++i)
    spec.targets.push_back(r.f64());
  spec.stale_weight = r.f64();
  spec.repartition_threshold = r.f64();
  spec.threads = r.i32();
  spec.dynamic_capacities = r.u8() != 0;

  spec.failures.clear();
  const std::uint32_t n_failures =
      r.count(2 * sizeof(double) + sizeof(std::uint64_t), 4096);
  for (std::uint32_t i = 0; r.ok() && i < n_failures; ++i) {
    FailurePlan plan;
    plan.at_s = r.f64();
    plan.node = static_cast<grid::NodeId>(r.u64());
    plan.downtime_s = r.f64();
    spec.failures.push_back(plan);
  }
  spec.random_mtbf_s = r.f64();
  spec.random_mttr_s = r.f64();

  // Version-1 payloads (pre-budget journals) end here; their runs carry
  // the default unlimited budget.
  if (version >= 2) {
    spec.budget.cpu_s = r.f64();
    spec.budget.mem_bytes = r.u64();
    spec.budget.io_bytes = r.u64();
    spec.budget.wall_s = r.f64();
    const std::uint8_t action = r.u8();
    if (r.ok() &&
        action > static_cast<std::uint8_t>(
                     res::ResourceBudget::Action::kThrottle))
      r.fail("unknown budget action " + std::to_string(action));
    spec.budget.action = static_cast<res::ResourceBudget::Action>(action);
    spec.budget.throttle_factor = r.f64();
  }

  if (r.ok() && !r.at_end())
    r.fail("trailing bytes after run-spec payload");
  if (!r.ok()) return r.status();
  return spec;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

Journal::Journal(JournalConfig config) : config_(std::move(config)) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Journal::path_for(std::uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof name, "%s%08llu%s", kWalPrefix,
                static_cast<unsigned long long>(generation), kWalSuffix);
  return (fs::path(config_.dir) / name).string();
}

std::string Journal::active_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_for(active_generation_);
}

std::vector<std::uint64_t> Journal::generations() const {
  std::vector<std::uint64_t> result;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t generation =
        generation_of(entry.path().filename().string());
    if (generation > 0) result.push_back(generation);
  }
  std::sort(result.begin(), result.end());
  return result;
}

util::Expected<JournalRecovery> Journal::open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_)
    return util::Status::failed_precondition("journal already open");

  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec)
    return util::Status::internal("cannot create journal dir " + config_.dir +
                                  ": " + ec.message());

  JournalRecovery recovery;

  // Replay every generation, oldest first.  Sequence numbers are assigned
  // once and preserved across compactions, so overlapping generations (a
  // crash between the compacted rename and the old-generation delete)
  // dedupe naturally: the first occurrence of a seq wins.
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending;
  std::set<std::uint64_t> dead;
  std::uint64_t max_seq = 0;
  const std::vector<std::uint64_t> existing = generations();
  for (const std::uint64_t generation : existing) {
    const std::string path = path_for(generation);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++recovery.torn_files;
      continue;
    }
    std::vector<std::uint8_t> bytes;
    {
      std::error_code size_ec;
      const std::uintmax_t size = fs::file_size(path, size_ec);
      if (size_ec) {
        ++recovery.torn_files;
        continue;
      }
      bytes.resize(static_cast<std::size_t>(size));
    }
    if (!bytes.empty() &&
        !in.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
      ++recovery.torn_files;
      continue;
    }
    const JournalScan scan =
        scan_journal_file(bytes, config_.max_payload_bytes);
    if (!scan.tail.is_ok()) {
      ++recovery.torn_files;
      util::log_warn("journal generation ", generation,
                     " truncated at byte ", scan.valid_bytes, ": ",
                     scan.tail.to_string());
    }
    for (const JournalRecord& record : scan.records) {
      max_seq = std::max(max_seq, record.seq);
      if (record.type == JournalRecordType::kTombstone) {
        dead.insert(record.seq);
        continue;
      }
      if (!pending.emplace(record.seq, record.payload).second)
        ++recovery.duplicates;
    }
  }
  next_seq_ = max_seq + 1;

  // Resolve tombstones and decode survivors.  A second dedupe layer works
  // on the spec identity (journal_key): if the same logical run was
  // admitted twice — e.g. a client retried after a shed whose append had
  // in fact reached the disk — only the first instance is resubmitted.
  std::unordered_map<std::string, std::uint64_t> seen_keys;
  for (auto& [seq, payload] : pending) {
    util::Expected<RunSpec> decoded = decode_run_spec(payload);
    if (dead.count(seq) > 0) {
      ++recovery.tombstoned;
      if (decoded) recovery.completed.push_back(decoded.value().name);
      continue;
    }
    if (!decoded) {
      ++recovery.unrecoverable;
      util::log_warn("journal seq ", seq, " pending but undecodable: ",
                     decoded.status().to_string());
      continue;
    }
    RunSpec spec = std::move(decoded).value();
    if (spec.kind == WorkloadKind::kCustom ||
        ((spec.kind == WorkloadKind::kTraceReplay ||
          spec.kind == WorkloadKind::kSystemSensitive) &&
         !spec.trace)) {
      // The callable / in-memory trace did not survive the process; the
      // record is journaled for accounting but cannot be re-executed.
      ++recovery.unrecoverable;
      continue;
    }
    const std::string key = spec.journal_key();
    const auto [it, fresh] = seen_keys.emplace(key, seq);
    if (!fresh) {
      ++recovery.duplicates;
      continue;
    }
    LivePending live;
    live.key = key;
    live.name = spec.name;
    live.payload = payload;
    live_.emplace(seq, std::move(live));
    recovery.pending.push_back(RecoveredRun{seq, std::move(spec)});
  }

  // Compact what survived into a fresh sealed generation and open it for
  // appends.  This also heals overlap and truncated tails on disk.  The
  // crash-injection hook is disarmed for this bootstrap compaction so
  // tests can open a journal and then crash a later, explicit compact().
  opened_ = true;  // compact_locked requires an open journal
  const int armed_crash = config_.testing_crash_compact;
  config_.testing_crash_compact = 0;
  util::Status compacted = compact_locked();
  config_.testing_crash_compact = armed_crash;
  if (!compacted.is_ok()) {
    opened_ = false;
    return compacted;
  }
  recovered_counter().add(recovery.pending.size());
  if (!recovery.pending.empty() || recovery.torn_files > 0)
    PRAGMA_FLIGHT(0.0, "journal", "recovered ", recovery.pending.size(),
                  " pending, ", recovery.tombstoned, " tombstoned, ",
                  recovery.unrecoverable, " unrecoverable, ",
                  recovery.torn_files, " torn files");
  return recovery;
}

util::Status Journal::write_frame(const std::vector<std::uint8_t>& frame,
                                  std::uint64_t* watermark) {
  if (util::Status status =
          write_all(fd_, frame.data(), frame.size(),
                    path_for(active_generation_));
      !status.is_ok())
    return status;
  written_bytes_ += frame.size();
  const std::uint64_t next =
      append_watermark_.load(std::memory_order_relaxed) + frame.size();
  append_watermark_.store(next, std::memory_order_release);
  if (watermark) *watermark = next;
  return util::Status::ok();
}

util::Status Journal::commit(std::uint64_t target) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (synced_watermark_ >= target) return util::Status::ok();  // batched
  const std::uint64_t covered =
      append_watermark_.load(std::memory_order_acquire);
  const auto start = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0)
    return util::Status::internal("journal fsync failed: " +
                                  std::string(std::strerror(errno)));
  if (obs::metrics_enabled()) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    fsync_histogram().observe(elapsed.count());
  }
  fsync_count_.fetch_add(1, std::memory_order_relaxed);
  synced_watermark_ = covered;
  return util::Status::ok();
}

void Journal::enter_degraded(const util::Status& cause) {
  if (degraded_) return;
  degraded_ = true;
  stats_.degraded = true;
  degraded_counter().add();
  util::log_warn("journal degraded (serving in-memory only): ",
                 cause.to_string());
  PRAGMA_FLIGHT(0.0, "journal", "DEGRADED journal-unwritable: ",
                cause.to_string());
}

util::Expected<std::uint64_t> Journal::append(const RunSpec& spec) {
  std::vector<std::uint8_t> payload = encode_run_spec(spec);
  if (payload.size() > config_.max_payload_bytes)
    return shed_status(util::StatusCode::kOutOfRange,
                       ShedReason::kPayloadTooLarge,
                       "run-spec payload of " + std::to_string(payload.size()) +
                           " bytes exceeds journal cap of " +
                           std::to_string(config_.max_payload_bytes),
                       /*retry_after_ms=*/-1);

  std::uint64_t seq = 0;
  std::uint64_t target = 0;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_)
      return util::Status::failed_precondition("journal not open");
    seq = next_seq_++;

    util::Status injected = util::Status::ok();
    if (config_.testing_append_error) injected = config_.testing_append_error();

    if (!degraded_ && injected.is_ok()) {
      const std::vector<std::uint8_t> frame =
          encode_journal_record(JournalRecordType::kPending, seq, payload);
      // Saturation: try compacting first (tombstoned bulk may free the
      // space); shed only when the *live* set itself is too large.
      if (written_bytes_ + frame.size() > config_.max_active_bytes) {
        (void)compact_locked();
        if (written_bytes_ + frame.size() > config_.max_active_bytes) {
          --next_seq_;
          ++stats_.shed_saturated;
          shed_saturated_counter().add();
          return shed_status(util::StatusCode::kUnavailable,
                             ShedReason::kJournalSaturated,
                             "journal saturated (" +
                                 std::to_string(written_bytes_) +
                                 " bytes live)",
                             config_.shed_retry_after_ms);
        }
      }
      util::Status written = write_frame(frame, &target);
      if (written.is_ok()) {
        ++records_in_active_;
        durable = true;
      } else {
        enter_degraded(written);
      }
    } else if (!injected.is_ok()) {
      enter_degraded(injected);
    }

    LivePending live;
    live.key = spec.journal_key();
    live.name = spec.name;
    if (durable) live.payload = std::move(payload);
    live_.emplace(seq, std::move(live));
    ++stats_.appends;
    if (!durable) ++stats_.degraded_appends;
  }
  appends_counter().add();
  if (durable && config_.fsync) {
    if (util::Status synced = commit(target); !synced.is_ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      enter_degraded(synced);
    }
  }
  return seq;
}

util::Expected<std::vector<std::uint64_t>> Journal::append_batch(
    const std::vector<const RunSpec*>& specs) {
  std::vector<std::uint64_t> seqs;
  if (specs.empty()) return seqs;
  seqs.reserve(specs.size());

  // Encode every payload outside the lock; an oversized spec sheds the
  // whole batch (all-or-nothing: no half of a batch may be durable while
  // its other half never existed).
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(specs.size());
  for (const RunSpec* spec : specs) {
    payloads.push_back(encode_run_spec(*spec));
    if (payloads.back().size() > config_.max_payload_bytes)
      return shed_status(util::StatusCode::kOutOfRange,
                         ShedReason::kPayloadTooLarge,
                         "run-spec payload of \"" + spec->name + "\" (" +
                             std::to_string(payloads.back().size()) +
                             " bytes) exceeds journal cap of " +
                             std::to_string(config_.max_payload_bytes),
                         /*retry_after_ms=*/-1);
  }

  std::uint64_t target = 0;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_)
      return util::Status::failed_precondition("journal not open");
    const std::uint64_t first_seq = next_seq_;
    for (std::size_t i = 0; i < specs.size(); ++i) seqs.push_back(next_seq_++);

    util::Status injected = util::Status::ok();
    if (config_.testing_append_error) injected = config_.testing_append_error();

    if (!degraded_ && injected.is_ok()) {
      // Frame the batch: kBatch records chunked so no frame payload
      // exceeds the cap; a chunk of one degenerates to a plain kPending
      // frame (a batch of one is byte-identical to append()).  All the
      // chunks concatenate into ONE image -> one write, one fsync.
      std::vector<std::uint8_t> image;
      std::vector<JournalRecord> chunk;
      std::size_t chunk_bytes = 4;
      const auto flush_chunk = [&] {
        if (chunk.empty()) return;
        const std::vector<std::uint8_t> frame =
            chunk.size() == 1
                ? encode_journal_record(JournalRecordType::kPending,
                                        chunk.front().seq,
                                        chunk.front().payload)
                : encode_journal_batch_record(chunk);
        image.insert(image.end(), frame.begin(), frame.end());
        chunk.clear();
        chunk_bytes = 4;
      };
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::size_t item_bytes = 16 + payloads[i].size();
        if (!chunk.empty() &&
            chunk_bytes + item_bytes > config_.max_payload_bytes)
          flush_chunk();
        JournalRecord item;
        item.type = JournalRecordType::kPending;
        item.seq = seqs[i];
        item.payload = payloads[i];
        chunk.push_back(std::move(item));
        chunk_bytes += item_bytes;
      }
      flush_chunk();

      // Saturation: try compacting first (tombstoned bulk may free the
      // space); shed the whole batch when the live set itself is too
      // large, restoring the sequence counter.
      if (written_bytes_ + image.size() > config_.max_active_bytes) {
        (void)compact_locked();
        if (written_bytes_ + image.size() > config_.max_active_bytes) {
          next_seq_ = first_seq;
          ++stats_.shed_saturated;
          shed_saturated_counter().add();
          return shed_status(util::StatusCode::kUnavailable,
                             ShedReason::kJournalSaturated,
                             "journal saturated (" +
                                 std::to_string(written_bytes_) +
                                 " bytes live); batch of " +
                                 std::to_string(specs.size()) + " shed",
                             config_.shed_retry_after_ms);
        }
      }
      util::Status written = write_frame(image, &target);
      if (written.is_ok()) {
        records_in_active_ += specs.size();
        durable = true;
      } else {
        enter_degraded(written);
      }
    } else if (!injected.is_ok()) {
      enter_degraded(injected);
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
      LivePending live;
      live.key = specs[i]->journal_key();
      live.name = specs[i]->name;
      if (durable) live.payload = std::move(payloads[i]);
      live_.emplace(seqs[i], std::move(live));
    }
    stats_.appends += specs.size();
    ++stats_.batch_appends;
    if (!durable) stats_.degraded_appends += specs.size();
  }
  appends_counter().add(specs.size());
  batch_appends_counter().add();
  if (durable && config_.fsync) {
    if (util::Status synced = commit(target); !synced.is_ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      enter_degraded(synced);
    }
  }
  return seqs;
}

void Journal::tombstone(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return;
  if (live_.erase(seq) == 0) return;  // unknown or already tombstoned
  ++stats_.tombstones;
  tombstones_counter().add();
  if (degraded_) return;  // in-memory bookkeeping only
  const std::vector<std::uint8_t> frame =
      encode_journal_record(JournalRecordType::kTombstone, seq, {});
  // Tombstones are not individually fsynced: losing one re-runs a
  // completed run after a crash, which recovery fences; the next pending
  // append's group commit carries them to disk.
  if (util::Status written = write_frame(frame, nullptr); !written.is_ok()) {
    enter_degraded(written);
    return;
  }
  ++tombstones_in_active_;
  if (tombstones_in_active_ >= config_.compact_min_tombstones &&
      static_cast<double>(tombstones_in_active_) >=
          config_.compact_tombstone_ratio *
              static_cast<double>(records_in_active_ + 1))
    (void)compact_locked();
}

util::Status Journal::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return util::Status::failed_precondition("journal not open");
  return compact_locked();
}

util::Status Journal::compact_locked() {
  if (degraded_)
    return util::Status::unavailable("journal degraded; compaction skipped");

  // Serialize the live set into a fresh generation image.
  std::vector<std::uint8_t> image = encode_journal_file_header();
  for (const auto& [seq, live] : live_) {
    if (live.payload.empty()) continue;  // degraded-era record, not durable
    const std::vector<std::uint8_t> frame =
        encode_journal_record(JournalRecordType::kPending, seq, live.payload);
    image.insert(image.end(), frame.begin(), frame.end());
  }

  const std::vector<std::uint64_t> old = generations();
  const std::uint64_t generation = old.empty() ? 1 : old.back() + 1;
  const std::string final_path = path_for(generation);
  const std::string tmp_path = final_path + kTmpSuffix;

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0)
    return util::Status::internal("cannot open " + tmp_path + ": " +
                                  std::strerror(errno));
  if (util::Status status =
          write_all(fd, image.data(), image.size(), tmp_path);
      !status.is_ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (util::Status status = io::fsync_fd(fd, tmp_path); !status.is_ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);

  if (config_.testing_crash_compact == 1)
    return util::Status::internal(
        "testing: crashed after compaction tmp write, before rename");

  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const util::Status status = util::Status::internal(
        "rename to " + final_path + " failed: " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (util::Status status = io::fsync_dir(config_.dir); !status.is_ok())
    return status;

  if (config_.testing_crash_compact == 2)
    return util::Status::internal(
        "testing: crashed after compaction rename, before old-gen delete");

  // Swap the active fd.  commit() fsyncs under commit_mu_ alone, so the
  // swap takes both locks (mu_ is already held; lock order mu_ ->
  // commit_mu_).  The compacted generation was fully fsynced above, so
  // everything ever appended is durable: the synced watermark jumps to
  // the append watermark.
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    const int new_fd =
        ::open(final_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (new_fd < 0)
      return util::Status::internal("cannot reopen " + final_path + ": " +
                                    std::strerror(errno));
    if (fd_ >= 0) ::close(fd_);
    fd_ = new_fd;
    synced_watermark_ = append_watermark_.load(std::memory_order_acquire);
  }
  active_generation_ = generation;
  written_bytes_ = image.size();
  records_in_active_ = live_.size();
  tombstones_in_active_ = 0;
  ++stats_.compactions;
  compactions_counter().add();

  for (const std::uint64_t g : old)
    ::unlink(path_for(g).c_str());  // best-effort; overlap dedupes by seq
  return util::Status::ok();
}

bool Journal::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalStats out = stats_;
  out.fsyncs = fsync_count_.load(std::memory_order_relaxed);
  out.active_bytes = written_bytes_;
  out.live_pending = live_.size();
  out.degraded = degraded_;
  return out;
}

}  // namespace pragma::service
