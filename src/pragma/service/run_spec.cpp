#include "pragma/service/run_spec.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "pragma/obs/obs.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::service {

namespace {

/// Reject an explicitly-set budget flag with a caret diagnostic pointing
/// at the offending value inside the verbatim CLI token or environment
/// assignment (same shape as the policy-DSL parse errors):
///
///   invalid --budget-cpu-s: budget must be positive, got -3
///     --budget-cpu-s=-3
///                    ^
[[noreturn]] void throw_budget_error(const util::CliFlags& flags,
                                     const std::string& name,
                                     const std::string& value) {
  std::string raw = flags.provenance(name);
  if (raw.empty()) raw = "--" + name + "=" + value;
  // The value starts after the last '=' (both "--x=v" and "ENV_X=v") or
  // after the separating space of the "--x v" form.
  std::size_t pos = raw.rfind('=');
  if (pos == std::string::npos) pos = raw.rfind(' ');
  pos = pos == std::string::npos ? 0 : pos + 1;
  std::ostringstream os;
  os << "invalid --" << name << ": budget must be positive, got " << value
     << '\n'
     << "  " << raw << '\n'
     << "  " << std::string(pos, ' ') << '^';
  throw std::invalid_argument(os.str());
}

/// Budgets are 0-means-unlimited by *default*; an explicit zero or
/// negative value is a contradiction worth failing loudly on.
double checked_budget(const util::CliFlags& flags, const std::string& name) {
  const double value = flags.get_double(name);
  if (flags.explicitly_set(name) && value <= 0.0) {
    std::ostringstream formatted;
    formatted << value;
    throw_budget_error(flags, name, formatted.str());
  }
  return value < 0.0 ? 0.0 : value;
}

/// "pragma-trace.json" + 3 -> "pragma-trace-3.json" (suffix appended when
/// there is no extension).  Keeps per-run obs artifacts from clobbering
/// each other in a concurrent batch.
std::string suffixed_path(const std::string& path, std::size_t index) {
  std::string tag = "-";
  tag += std::to_string(index);
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

}  // namespace

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kManaged: return "managed";
    case WorkloadKind::kTraceReplay: return "trace-replay";
    case WorkloadKind::kSystemSensitive: return "system-sensitive";
    case WorkloadKind::kCustom: return "custom";
  }
  return "?";
}

core::ManagedRunConfig RunSpec::to_managed() const {
  core::ManagedRunConfig config;
  config.app = app;
  config.app_name = app_name;
  config.nprocs = nprocs;
  config.capacity_spread = capacity_spread;
  config.with_background_load = with_background_load;
  config.load = load;
  config.system_sensitive = system_sensitive;
  config.proactive = proactive;
  config.weights = weights;
  config.monitor = monitor;
  config.exec = exec;
  config.meta = meta;
  config.agent_period_s = agent_period_s;
  config.load_event_threshold = load_event_threshold;
  config.seed = seed;
  config.ft = ft;
  config.persist = persist;
  config.modeled_partition_s_per_cell = modeled_partition_s_per_cell;
  config.obs = obs;
  return config;
}

core::TraceRunConfig RunSpec::to_trace() const {
  core::TraceRunConfig config;
  config.exec = exec;
  config.meta = meta;
  config.nprocs = nprocs;
  config.canonical_grain = canonical_grain;
  config.targets = targets;
  config.stale_weight = stale_weight;
  config.repartition_threshold = repartition_threshold;
  config.threads = threads;
  config.modeled_partition_s_per_cell = modeled_partition_s_per_cell;
  config.obs = obs;
  config.shared_cache = workgrid_cache;
  return config;
}

core::SystemSensitiveConfig RunSpec::to_system_sensitive() const {
  // The Table 5 experiment carries its own curated load/weights/warmup
  // defaults; only the knobs a caller meaningfully varies map through.
  core::SystemSensitiveConfig config;
  config.nprocs = nprocs;
  config.seed = seed;
  config.capacity_spread = capacity_spread;
  config.exec = exec;
  if (strategy != "adaptive" && !strategy.empty())
    config.partitioner = strategy;
  config.canonical_grain = canonical_grain;
  config.dynamic_capacities = dynamic_capacities;
  config.workgrid_cache = workgrid_cache;
  config.threads = threads;
  return config;
}

std::string RunSpec::journal_key() const {
  return name + "|" + tenant + "|" + to_string(kind) + "|" +
         std::to_string(seed);
}

RunSpec RunSpec::derived(std::size_t index) const {
  RunSpec spec = *this;
  spec.name = name + "-" + std::to_string(index);
  // A distinct deterministic seed per run: every internal Rng stream of a
  // run is keyed off this value, so shifting it isolates the whole run.
  spec.seed = seed + 1000 * static_cast<std::uint64_t>(index);
  spec.persist.dir = persist.dir + "-" + std::to_string(index);
  if (spec.obs.tracing)
    spec.obs.trace_path = suffixed_path(obs.trace_path, index);
  if (spec.obs.metrics)
    spec.obs.metrics_path = suffixed_path(obs.metrics_path, index);
  return spec;
}

grid::Cluster build_cluster(const RunSpec& spec) {
  if (spec.sites > 1) {
    const std::size_t per_site =
        spec.nprocs / spec.sites > 0 ? spec.nprocs / spec.sites : 1;
    return grid::ClusterBuilder::federated(spec.sites, per_site, 1.0,
                                           1000.0, spec.wan_mbps);
  }
  if (spec.capacity_spread > 0.0) {
    // Same stream layout as ManagedRun so a replay and a managed run of
    // one spec see the same machine.
    util::Rng rng(spec.seed, 1);
    return grid::ClusterBuilder::heterogeneous(spec.nprocs, rng, 0.5, 512.0,
                                               100.0, 150e-6,
                                               spec.capacity_spread);
  }
  return grid::ClusterBuilder::homogeneous(spec.nprocs);
}

void add_run_flags(util::CliFlags& flags, const RunSpec& defaults) {
  flags.add_int("procs", static_cast<long long>(defaults.nprocs),
                "number of processors");
  flags.add_int("steps", defaults.app.coarse_steps, "coarse time-steps");
  flags.add_int("seed", static_cast<long long>(defaults.seed),
                "master RNG seed of the run");
  flags.add_double("spread", defaults.capacity_spread,
                   "node-speed heterogeneity (0 = homogeneous)");
  flags.add_int("threads", defaults.threads,
                "rasterization worker threads (replays)");
  flags.add_bool("background-load", defaults.with_background_load,
                 "run the synthetic background load generator");
  flags.add_bool("system-sensitive", defaults.system_sensitive,
                 "capacity-weighted targets from the monitor");
  flags.add_bool("proactive", defaults.proactive,
                 "use capacity forecasts instead of current readings");
  flags.add_bool("deterministic",
                 defaults.modeled_partition_s_per_cell > 0.0,
                 "model the partitioner cost instead of measuring wall "
                 "clock, making the output reproducible");
  flags.add_bool("ft", defaults.ft.enabled,
                 "fault-tolerant control plane: lossy messaging with "
                 "reliable directives and heartbeat detection");
  flags.add_double("drop", defaults.ft.channel.drop_probability,
                   "control-message drop probability (with --ft)");
  flags.add_double("checkpoint", defaults.ft.checkpoint_interval_s,
                   "save-state interval in seconds (with --ft)");
  flags.add_double("reliable-timeout", defaults.ft.reliable.timeout_s,
                   "seconds before the first directive retry");
  flags.add_double("reliable-backoff", defaults.ft.reliable.backoff_factor,
                   "retry backoff multiplier for directives");
  flags.add_int("reliable-attempts", defaults.ft.reliable.max_attempts,
                "directive transmissions before abandoning the send");
  flags.add_string("ft-dir", defaults.persist.dir,
                   "durable checkpoint directory");
  flags.add_string("tenant", defaults.tenant,
                   "fair-share tenant this run is charged to");
  flags.add_int("priority", defaults.priority,
                "scheduling priority within the tenant (higher first)");
  flags.add_double("budget-cpu-s", defaults.budget.cpu_s,
                   "modeled CPU-second budget (0 = unlimited)");
  flags.add_double("budget-mem-mb", static_cast<double>(
                       defaults.budget.mem_bytes) / (1024.0 * 1024.0),
                   "peak modeled memory budget in MiB (0 = unlimited)");
  flags.add_double("budget-io-mb", static_cast<double>(
                       defaults.budget.io_bytes) / (1024.0 * 1024.0),
                   "checkpoint/journal IO budget in MiB (0 = unlimited)");
  flags.add_double("budget-wall-s", defaults.budget.wall_s,
                   "wall-clock budget in seconds (0 = unlimited)");
  flags.add_string("budget-action",
                   defaults.budget.action ==
                           res::ResourceBudget::Action::kThrottle
                       ? "throttle"
                       : "kill",
                   "what happens to a violator: kill | throttle");
  obs::add_cli_flags(flags);
}

RunSpec spec_from_flags(const util::CliFlags& flags, RunSpec base) {
  base.nprocs = static_cast<std::size_t>(flags.get_int("procs"));
  base.app.coarse_steps = static_cast<int>(flags.get_int("steps"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.capacity_spread = flags.get_double("spread");
  base.threads = static_cast<int>(flags.get_int("threads"));
  base.with_background_load = flags.get_bool("background-load");
  base.system_sensitive = flags.get_bool("system-sensitive");
  base.proactive = flags.get_bool("proactive");
  if (flags.get_bool("deterministic")) {
    if (base.modeled_partition_s_per_cell <= 0.0)
      base.modeled_partition_s_per_cell = 50e-9;
  } else {
    base.modeled_partition_s_per_cell = 0.0;
  }
  base.ft.enabled = flags.get_bool("ft");
  base.ft.channel.drop_probability = flags.get_double("drop");
  base.ft.checkpoint_interval_s = flags.get_double("checkpoint");
  base.ft.reliable.timeout_s = flags.get_double("reliable-timeout");
  base.ft.reliable.backoff_factor = flags.get_double("reliable-backoff");
  base.ft.reliable.max_attempts =
      static_cast<int>(flags.get_int("reliable-attempts"));
  base.persist.dir = flags.get_string("ft-dir");
  base.tenant = flags.get_string("tenant");
  base.priority = static_cast<int>(flags.get_int("priority"));
  base.budget.cpu_s = checked_budget(flags, "budget-cpu-s");
  base.budget.mem_bytes = static_cast<std::uint64_t>(
      checked_budget(flags, "budget-mem-mb") * 1024.0 * 1024.0);
  base.budget.io_bytes = static_cast<std::uint64_t>(
      checked_budget(flags, "budget-io-mb") * 1024.0 * 1024.0);
  base.budget.wall_s = checked_budget(flags, "budget-wall-s");
  const std::string& action = flags.get_string("budget-action");
  if (action == "kill") {
    base.budget.action = res::ResourceBudget::Action::kKill;
  } else if (action == "throttle") {
    base.budget.action = res::ResourceBudget::Action::kThrottle;
  } else {
    throw std::invalid_argument("invalid --budget-action \"" + action +
                                "\": must be kill or throttle");
  }
  base.obs = obs::config_from_flags(flags, base.obs);
  return base;
}

}  // namespace pragma::service
