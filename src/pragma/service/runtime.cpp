#include "pragma/service/runtime.hpp"

#include <utility>

#include "pragma/obs/obs.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace {
/// The scheduler receives the journal pointer through its config.
SchedulerConfig with_journal(SchedulerConfig config, Journal* journal) {
  config.journal = journal;
  return config;
}
}  // namespace

std::unique_ptr<Journal> Runtime::make_journal(JournalConfig config,
                                               JournalRecovery* recovery) {
  if (!config.enabled) return nullptr;
  auto journal = std::make_unique<Journal>(std::move(config));
  util::Expected<JournalRecovery> opened = journal->open();
  if (!opened) {
    util::log_warn("runtime: journal unusable, serving without admission "
                   "durability: ",
                   opened.status().to_string());
    return nullptr;
  }
  *recovery = std::move(opened).value();
  return journal;
}

Runtime::Runtime(Options options)
    : defaults_(std::move(options.defaults)),
      distributed_(std::move(options.distributed)),
      journal_(make_journal(std::move(options.journal), &recovery_)),
      scheduler_(with_journal(options.scheduler, journal_.get()),
                 options.pool) {
  if (options.grid) {
    defaults_.nprocs = options.grid->nprocs;
    defaults_.capacity_spread = options.grid->capacity_spread;
    defaults_.sites = options.grid->sites;
    defaults_.wan_mbps = options.grid->wan_mbps;
    defaults_.seed = options.grid->seed;
  }
  if (options.monitor) defaults_.monitor = *options.monitor;
  if (options.obs) {
    defaults_.obs = *options.obs;
    obs::apply(defaults_.obs);
  }
  // Replay survivors of a previous process before accepting new work.
  // At-least-once: each run re-executes under its original journal seq;
  // checkpoint resume (forced on for persisting runs) and deterministic
  // seeded execution fence the rerun to an effectively-once outcome.
  if (journal_ && journal_->config().auto_resubmit) {
    for (const RecoveredRun& run : recovery_.pending) {
      RunSpec spec = run.spec;
      if (spec.persist.enabled) spec.persist.resume = true;
      util::Expected<RunHandle> handle =
          scheduler_.resubmit_recovered(std::move(spec), run.seq);
      if (handle) {
        recovered_handles_.push_back(std::move(handle).value());
      } else {
        util::log_warn("runtime: recovered run \"", run.spec.name,
                       "\" shed at resubmission: ",
                       handle.status().to_string());
      }
    }
  }
}

void Runtime::wire_cache(RunSpec& spec) {
  const bool replays = spec.kind == WorkloadKind::kTraceReplay ||
                       spec.kind == WorkloadKind::kSystemSensitive;
  if (replays && spec.trace && spec.workgrid_cache == nullptr) {
    std::lock_guard<std::mutex> lock(caches_mu_);
    std::unique_ptr<partition::WorkGridCache>& cache =
        caches_[spec.trace.get()];
    if (!cache) cache = std::make_unique<partition::WorkGridCache>();
    spec.workgrid_cache = cache.get();
  }
}

util::Expected<RunHandle> Runtime::submit(RunSpec spec) {
  wire_cache(spec);
  return scheduler_.submit(std::move(spec));
}

std::vector<util::Expected<RunHandle>> Runtime::submit_batch(
    std::vector<RunSpec> specs) {
  for (RunSpec& spec : specs) wire_cache(spec);
  return scheduler_.submit_batch(std::move(specs));
}

RunOutcome Runtime::run(RunSpec spec) {
  util::Expected<RunHandle> handle = submit(std::move(spec));
  if (!handle) {
    RunOutcome outcome;
    outcome.state = RunState::kFailed;
    outcome.status = handle.status();
    return outcome;
  }
  return handle.value().wait();
}

std::vector<RunOutcome> Runtime::run_burst(std::vector<RunSpec> specs) {
  std::vector<RunOutcome> outcomes(specs.size());
  if (!distributed_.enabled) {
    // Scheduler path: one batched admission (one journal frame, one
    // fsync), then join in order.
    std::vector<util::Expected<RunHandle>> handles =
        submit_batch(std::move(specs));
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (handles[i]) {
        outcomes[i] = handles[i].value().wait();
      } else {
        outcomes[i].state = RunState::kFailed;
        outcomes[i].status = handles[i].status();
      }
    }
    return outcomes;
  }

  DistributedService service(distributed_, defaults_.seed);
  for (std::size_t w = 0; w < distributed_.workers; ++w)
    service.add_worker("w" + std::to_string(w));
  // Same durability contract as the scheduler path: the pending records
  // are on disk (one sealed batch frame, one fsync) before any
  // coordinator lease enqueue returns.  append_batch is all-or-nothing:
  // a saturated journal sheds the whole burst rather than silently
  // running some specs without durability.
  std::vector<std::uint64_t> journal_seqs;
  if (journal_) {
    std::vector<const RunSpec*> pointers;
    pointers.reserve(specs.size());
    for (const RunSpec& spec : specs) pointers.push_back(&spec);
    util::Expected<std::vector<std::uint64_t>> seqs =
        journal_->append_batch(pointers);
    if (!seqs) {
      for (RunOutcome& outcome : outcomes) {
        outcome.state = RunState::kFailed;
        outcome.status = seqs.status();
      }
      return outcomes;
    }
    journal_seqs = std::move(seqs).value();
  }
  std::vector<util::Expected<RunHandle>> handles =
      service.submit_batch(std::move(specs));
  const util::Status status = service.run_until_done();
  // Tickets of runs that never reached a terminal state (run_until_done
  // timed out) resolve as kFailed carrying the reason; with a clean
  // finish this is a no-op because on_result already resolved them all.
  service.coordinator().resolve_pending(
      status.is_ok()
          ? util::Status::internal("run never reached a terminal state")
          : status);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (handles[i]) {
      outcomes[i] = handles[i].value().wait();
    } else {
      outcomes[i].state = RunState::kFailed;
      outcomes[i].status = handles[i].status();
    }
  }
  // Every journaled spec has been resolved one way or the other and its
  // outcome reported to the caller; a kill before this point leaves the
  // pending records for the next process to recover.
  if (journal_) {
    for (const std::uint64_t seq : journal_seqs)
      if (seq != 0) journal_->tombstone(seq);
  }
  return outcomes;
}

const grid::Cluster& Runtime::cluster() {
  if (!cluster_) cluster_.emplace(build_cluster(defaults_));
  return *cluster_;
}

}  // namespace pragma::service
