#include "pragma/service/runtime.hpp"

#include <utility>

#include "pragma/obs/obs.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace {
/// The scheduler receives the journal pointer through its config.
SchedulerConfig with_journal(SchedulerConfig config, Journal* journal) {
  config.journal = journal;
  return config;
}
}  // namespace

std::unique_ptr<Journal> Runtime::make_journal(JournalConfig config,
                                               JournalRecovery* recovery) {
  if (!config.enabled) return nullptr;
  auto journal = std::make_unique<Journal>(std::move(config));
  util::Expected<JournalRecovery> opened = journal->open();
  if (!opened) {
    util::log_warn("runtime: journal unusable, serving without admission "
                   "durability: ",
                   opened.status().to_string());
    return nullptr;
  }
  *recovery = std::move(opened).value();
  return journal;
}

Runtime::Runtime(Options options)
    : defaults_(std::move(options.defaults)),
      distributed_(std::move(options.distributed)),
      journal_(make_journal(std::move(options.journal), &recovery_)),
      scheduler_(with_journal(options.scheduler, journal_.get()),
                 options.pool) {
  if (options.grid) {
    defaults_.nprocs = options.grid->nprocs;
    defaults_.capacity_spread = options.grid->capacity_spread;
    defaults_.sites = options.grid->sites;
    defaults_.wan_mbps = options.grid->wan_mbps;
    defaults_.seed = options.grid->seed;
  }
  if (options.monitor) defaults_.monitor = *options.monitor;
  if (options.obs) {
    defaults_.obs = *options.obs;
    obs::apply(defaults_.obs);
  }
  // Replay survivors of a previous process before accepting new work.
  // At-least-once: each run re-executes under its original journal seq;
  // checkpoint resume (forced on for persisting runs) and deterministic
  // seeded execution fence the rerun to an effectively-once outcome.
  if (journal_ && journal_->config().auto_resubmit) {
    for (const RecoveredRun& run : recovery_.pending) {
      RunSpec spec = run.spec;
      if (spec.persist.enabled) spec.persist.resume = true;
      util::Expected<RunHandle> handle =
          scheduler_.resubmit_recovered(std::move(spec), run.seq);
      if (handle) {
        recovered_handles_.push_back(std::move(handle).value());
      } else {
        util::log_warn("runtime: recovered run \"", run.spec.name,
                       "\" shed at resubmission: ",
                       handle.status().to_string());
      }
    }
  }
}

util::Expected<RunHandle> Runtime::submit(RunSpec spec) {
  const bool replays = spec.kind == WorkloadKind::kTraceReplay ||
                       spec.kind == WorkloadKind::kSystemSensitive;
  if (replays && spec.trace && spec.workgrid_cache == nullptr) {
    std::lock_guard<std::mutex> lock(caches_mu_);
    std::unique_ptr<partition::WorkGridCache>& cache =
        caches_[spec.trace.get()];
    if (!cache) cache = std::make_unique<partition::WorkGridCache>();
    spec.workgrid_cache = cache.get();
  }
  return scheduler_.submit(std::move(spec));
}

RunOutcome Runtime::run(RunSpec spec) {
  util::Expected<RunHandle> handle = submit(std::move(spec));
  if (!handle) {
    RunOutcome outcome;
    outcome.state = RunState::kFailed;
    outcome.status = handle.status();
    return outcome;
  }
  return handle.value().wait();
}

std::vector<RunOutcome> Runtime::run_burst(std::vector<RunSpec> specs) {
  std::vector<RunOutcome> outcomes(specs.size());
  if (!distributed_.enabled) {
    // The pre-existing path, untouched: submit everything to the
    // in-process scheduler, then join in order.
    std::vector<util::Expected<RunHandle>> handles;
    handles.reserve(specs.size());
    for (RunSpec& spec : specs) handles.push_back(submit(std::move(spec)));
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (handles[i]) {
        outcomes[i] = handles[i].value().wait();
      } else {
        outcomes[i].state = RunState::kFailed;
        outcomes[i].status = handles[i].status();
      }
    }
    return outcomes;
  }

  DistributedService service(distributed_, defaults_.seed);
  for (std::size_t w = 0; w < distributed_.workers; ++w)
    service.add_worker("w" + std::to_string(w));
  std::vector<std::pair<std::size_t, std::uint64_t>> admitted;
  std::vector<std::uint64_t> journal_seqs(specs.size(), 0);
  admitted.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Same durability contract as the scheduler path: the pending record
    // is on disk before the coordinator lease enqueue returns.
    if (journal_) {
      util::Expected<std::uint64_t> seq = journal_->append(specs[i]);
      if (!seq) {
        outcomes[i].state = RunState::kFailed;
        outcomes[i].status = seq.status();
        continue;
      }
      journal_seqs[i] = seq.value();
    }
    util::Expected<std::uint64_t> id = service.submit(std::move(specs[i]));
    if (id) {
      admitted.emplace_back(i, id.value());
    } else {
      outcomes[i].state = RunState::kFailed;
      outcomes[i].status = id.status();
    }
  }
  const util::Status status = service.run_until_done();
  for (const auto& [index, id] : admitted) {
    const DistRun* run = service.coordinator().find(id);
    if (run != nullptr && is_terminal(run->state)) {
      outcomes[index] = run->outcome;
    } else {
      outcomes[index].state = RunState::kFailed;
      outcomes[index].status =
          status.is_ok() ? util::Status::internal("run never reached a "
                                                  "terminal state")
                         : status;
    }
  }
  // Every journaled spec has been resolved one way or the other and its
  // outcome reported to the caller; a kill before this point leaves the
  // pending records for the next process to recover.
  if (journal_) {
    for (const std::uint64_t seq : journal_seqs)
      if (seq != 0) journal_->tombstone(seq);
  }
  return outcomes;
}

const grid::Cluster& Runtime::cluster() {
  if (!cluster_) cluster_.emplace(build_cluster(defaults_));
  return *cluster_;
}

}  // namespace pragma::service
