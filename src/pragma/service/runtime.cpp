#include "pragma/service/runtime.hpp"

#include <utility>

#include "pragma/obs/obs.hpp"

namespace pragma::service {

Runtime::Runtime(Options options)
    : defaults_(std::move(options.defaults)),
      scheduler_(options.scheduler, options.pool) {
  if (options.grid) {
    defaults_.nprocs = options.grid->nprocs;
    defaults_.capacity_spread = options.grid->capacity_spread;
    defaults_.sites = options.grid->sites;
    defaults_.wan_mbps = options.grid->wan_mbps;
    defaults_.seed = options.grid->seed;
  }
  if (options.monitor) defaults_.monitor = *options.monitor;
  if (options.obs) {
    defaults_.obs = *options.obs;
    obs::apply(defaults_.obs);
  }
}

util::Expected<RunHandle> Runtime::submit(RunSpec spec) {
  const bool replays = spec.kind == WorkloadKind::kTraceReplay ||
                       spec.kind == WorkloadKind::kSystemSensitive;
  if (replays && spec.trace && spec.workgrid_cache == nullptr) {
    std::lock_guard<std::mutex> lock(caches_mu_);
    std::unique_ptr<partition::WorkGridCache>& cache =
        caches_[spec.trace.get()];
    if (!cache) cache = std::make_unique<partition::WorkGridCache>();
    spec.workgrid_cache = cache.get();
  }
  return scheduler_.submit(std::move(spec));
}

RunOutcome Runtime::run(RunSpec spec) {
  util::Expected<RunHandle> handle = submit(std::move(spec));
  if (!handle) {
    RunOutcome outcome;
    outcome.state = RunState::kFailed;
    outcome.status = handle.status();
    return outcome;
  }
  return handle.value().wait();
}

const grid::Cluster& Runtime::cluster() {
  if (!cluster_) cluster_.emplace(build_cluster(defaults_));
  return *cluster_;
}

}  // namespace pragma::service
