#include "pragma/service/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/policy/builtin.hpp"
#include "pragma/service/journal.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Service counters; every add() is a no-op while obs metrics are off.
obs::Counter& submitted_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.submitted");
  return counter;
}
obs::Counter& rejected_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.rejected");
  return counter;
}
obs::Counter& completed_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.completed");
  return counter;
}
obs::Counter& failed_counter() {
  static obs::Counter& counter = obs::metrics().counter("service.runs.failed");
  return counter;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.cancelled");
  return counter;
}
obs::Counter& shed_queue_full_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_queue_full");
  return counter;
}
obs::Counter& shed_rate_limited_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_rate_limited");
  return counter;
}
obs::Counter& shed_journal_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_journal");
  return counter;
}
obs::Counter& batches_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.batches");
  return counter;
}
obs::Counter& batch_specs_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.batch_specs");
  return counter;
}
obs::Counter& coalesced_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.coalesced");
  return counter;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("service.sched.queue_depth");
  return gauge;
}
obs::Counter& budget_killed_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.budget_killed");
  return counter;
}
obs::Counter& budget_throttled_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.budget_throttled");
  return counter;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

util::Status shutting_down_status() {
  return shed_status(util::StatusCode::kUnavailable, ShedReason::kShuttingDown,
                     "scheduler is shutting down", /*retry_after_ms=*/-1);
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig config, util::ThreadPool* pool)
    : config_(config), pool_(pool != nullptr ? pool : &util::shared_pool()) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  std::size_t nshards = config_.admission_shards;
  if (nshards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    nshards = std::min<std::size_t>(8, std::max(1u, hw));
  }
  config_.admission_shards = nshards;
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

Scheduler::~Scheduler() {
  shutdown_.store(true);
  std::vector<TicketPtr> doomed;
  std::vector<TicketPtr> running;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Centralize anything still staged in the shards; stagers racing this
    // drain observe shutdown_ under their shard mutex and shed instead.
    drain_shards_locked();
    doomed.assign(queue_.begin(), queue_.end());
    occupied_.fetch_sub(queue_.size());
    queue_.clear();
    running = inflight_;
  }
  for (const TicketPtr& ticket : running) {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->cancel.store(true, std::memory_order_relaxed);
    if (ticket->active != nullptr) ticket->active->request_cancel();
  }
  for (const TicketPtr& ticket : doomed) {
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      ticket->state = RunState::kCancelled;
      ticket->outcome.state = RunState::kCancelled;
      ticket->outcome.status =
          util::Status::unavailable("scheduler shut down before dispatch");
    }
    ticket->cv.notify_all();
    // A clean shutdown resolves queued runs as cancelled (their callers
    // were told); tombstone so a restart does not resurrect them.
    if (config_.journal != nullptr && ticket->journal_seq != 0)
      config_.journal->tombstone(ticket->journal_seq);
  }
  drain();
}

std::size_t Scheduler::workers() const {
  if (config_.workers > 0) return config_.workers;
  return std::max<std::size_t>(1, pool_->size());
}

Scheduler::Shard& Scheduler::shard_for(const std::string& tenant) {
  return *shards_[std::hash<std::string>{}(tenant) % shards_.size()];
}

util::Status Scheduler::check_rate_limit(Shard& shard,
                                         const std::string& tenant_name) {
  if (config_.rate_limit.rate_per_s <= 0.0) return util::Status::ok();
  TokenBucket& bucket = shard.buckets[tenant_name];
  const auto now = std::chrono::steady_clock::now();
  if (!bucket.primed) {
    bucket.primed = true;
    bucket.tokens = std::max(config_.rate_limit.burst, 1.0);
    bucket.last_refill = now;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens =
        std::min(std::max(config_.rate_limit.burst, 1.0),
                 bucket.tokens + elapsed * config_.rate_limit.rate_per_s);
    bucket.last_refill = now;
  }
  if (bucket.tokens < 1.0) {
    const double wait_s =
        (1.0 - bucket.tokens) / config_.rate_limit.rate_per_s;
    n_shed_rate_limited_.fetch_add(1);
    n_rejected_.fetch_add(1);
    rejected_counter().add();
    shed_rate_limited_counter().add();
    return shed_status(util::StatusCode::kUnavailable,
                       ShedReason::kRateLimited,
                       "tenant \"" + tenant_name + "\" rate limited",
                       static_cast<int>(wait_s * 1000.0) + 1);
  }
  bucket.tokens -= 1.0;
  return util::Status::ok();
}

bool Scheduler::try_reserve() {
  const std::size_t prev = occupied_.fetch_add(1);
  if (prev >= config_.queue_capacity) {
    occupied_.fetch_sub(1);
    return false;
  }
  reserved_.fetch_add(1);
  return true;
}

void Scheduler::release_reservation() {
  reserved_.fetch_sub(1);
  occupied_.fetch_sub(1);
}

bool Scheduler::stage(Shard& shard, const TicketPtr& ticket) {
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shutdown_.load()) return false;
    ticket->sequence = next_sequence_.fetch_add(1);
    ticket->run_id = ticket->sequence;
    ticket->submitted_at = std::chrono::steady_clock::now();
    shard.staged.push_back(ticket);
    staged_.fetch_add(1);
  }
  reserved_.fetch_sub(1);
  n_submitted_.fetch_add(1);
  submitted_counter().add();
  const std::size_t depth = queue_depth();
  std::size_t peak = peak_queue_depth_.load();
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth)) {
  }
  queue_depth_gauge().set(static_cast<double>(depth));
  return true;
}

void Scheduler::kick_dispatch() {
  // Fast path: all worker slots busy — the finishing worker drains the
  // shards itself (finish() decrements running_ under mu_ *before* its
  // dispatch sweep, so either that sweep sees our staged ticket or we see
  // the decremented running_ here; the staged ticket is never orphaned).
  if (running_.load() >= workers()) return;
  std::lock_guard<std::mutex> lock(mu_);
  maybe_dispatch();
}

void Scheduler::drain_shards_locked() {
  if (staged_.load() == 0) return;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (!shard->staged.empty()) {
      queue_.push_back(std::move(shard->staged.front()));
      shard->staged.pop_front();
      staged_.fetch_sub(1);
    }
  }
}

util::Expected<RunHandle> Scheduler::submit(RunSpec spec) {
  return admit(std::move(spec), /*rate_limited=*/true, /*recovered_seq=*/0);
}

util::Expected<RunHandle> Scheduler::resubmit_recovered(
    RunSpec spec, std::uint64_t journal_seq) {
  return admit(std::move(spec), /*rate_limited=*/false, journal_seq);
}

util::Expected<RunHandle> Scheduler::admit(RunSpec spec, bool rate_limited,
                                           std::uint64_t recovered_seq) {
  // Phase 1 (shard-local): degradation-ladder checks, then reserve a
  // queue slot with one atomic fetch-add.  The reservation keeps
  // concurrent submitters from oversubscribing the queue while phase 2
  // runs unlocked; nothing here touches the central dispatch lock.
  if (shutdown_.load()) {
    n_rejected_.fetch_add(1);
    rejected_counter().add();
    return shutting_down_status();
  }
  Shard& shard = shard_for(spec.tenant);
  if (rate_limited) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (util::Status limited = check_rate_limit(shard, spec.tenant);
        !limited.is_ok())
      return limited;
  }
  if (!try_reserve()) {
    n_rejected_.fetch_add(1);
    n_shed_queue_full_.fetch_add(1);
    rejected_counter().add();
    shed_queue_full_counter().add();
    return shed_status(util::StatusCode::kUnavailable, ShedReason::kQueueFull,
                       "admission queue full (" +
                           std::to_string(queue_depth()) + "/" +
                           std::to_string(config_.queue_capacity) +
                           "); run \"" + spec.name + "\" shed",
                       config_.shed_retry_after_ms);
  }
  auto ticket = std::make_shared<detail::Ticket>();
  ticket->spec = std::move(spec);
  ticket->journal_seq = recovered_seq;

  // Phase 2 (unlocked): the durable append — group-commit fsync happens
  // here, so no scheduler lock is ever held across disk I/O.  Recovered
  // runs keep their original pending record instead of appending again.
  if (config_.journal != nullptr && recovered_seq == 0) {
    util::Expected<std::uint64_t> seq = config_.journal->append(ticket->spec);
    if (!seq) {
      release_reservation();
      n_rejected_.fetch_add(1);
      n_shed_journal_.fetch_add(1);
      rejected_counter().add();
      shed_journal_counter().add();
      return seq.status();
    }
    ticket->journal_seq = seq.value();
  }

  // Phase 3 (shard-local): convert the reservation into a staged ticket.
  if (!stage(shard, ticket)) {
    // Shut down while appending: the journal keeps the pending record,
    // so a restart recovers the run instead of losing it silently.
    release_reservation();
    n_rejected_.fetch_add(1);
    rejected_counter().add();
    return shutting_down_status();
  }
  kick_dispatch();
  return RunHandle(std::move(ticket), this);
}

std::vector<util::Expected<RunHandle>> Scheduler::submit_batch(
    std::vector<RunSpec> specs) {
  const std::size_t n = specs.size();
  std::vector<util::Expected<RunHandle>> results;
  results.reserve(n);
  if (n == 0) return results;
  n_batches_.fetch_add(1);
  n_batch_specs_.fetch_add(n);
  batches_counter().add();
  batch_specs_counter().add(n);
  for (std::size_t i = 0; i < n; ++i)
    results.emplace_back(util::Status::unavailable("batch slot unresolved"));

  // Coalesce: duplicates of the same journal_key with bitwise-identical
  // encoded payloads (and the same trace object) attach to the first
  // occurrence's execution.  Custom workloads never coalesce — their
  // callables are not part of the encoding, so two specs could encode
  // equal yet run different code.
  std::vector<std::size_t> primary(n);
  std::vector<std::vector<std::uint8_t>> encoded;
  std::map<std::string, std::size_t> first_by_key;
  if (config_.coalesce_batches) encoded.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    primary[i] = i;
    if (!config_.coalesce_batches) continue;
    if (specs[i].kind == WorkloadKind::kCustom) continue;
    encoded[i] = encode_run_spec(specs[i]);
    const auto [it, fresh] = first_by_key.emplace(specs[i].journal_key(), i);
    if (!fresh) {
      const std::size_t j = it->second;
      if (specs[i].trace == specs[j].trace && encoded[i] == encoded[j]) {
        primary[i] = j;
        n_coalesced_.fetch_add(1);
        coalesced_counter().add();
      }
    }
  }

  // Per-item admission: rate limit + slot reservation.  A shed item's
  // slot carries its own status while the rest of the batch proceeds.
  struct Pending {
    std::size_t index;
    TicketPtr ticket;
    Shard* shard;
  };
  std::vector<Pending> admitted;
  admitted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (primary[i] != i) continue;  // follower: fans out below
    if (shutdown_.load()) {
      n_rejected_.fetch_add(1);
      rejected_counter().add();
      results[i] = shutting_down_status();
      continue;
    }
    Shard& shard = shard_for(specs[i].tenant);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (util::Status limited = check_rate_limit(shard, specs[i].tenant);
          !limited.is_ok()) {
        results[i] = std::move(limited);
        continue;
      }
    }
    if (!try_reserve()) {
      n_rejected_.fetch_add(1);
      n_shed_queue_full_.fetch_add(1);
      rejected_counter().add();
      shed_queue_full_counter().add();
      results[i] = shed_status(
          util::StatusCode::kUnavailable, ShedReason::kQueueFull,
          "admission queue full (" + std::to_string(queue_depth()) + "/" +
              std::to_string(config_.queue_capacity) + "); run \"" +
              specs[i].name + "\" shed",
          config_.shed_retry_after_ms);
      continue;
    }
    auto ticket = std::make_shared<detail::Ticket>();
    ticket->spec = std::move(specs[i]);
    admitted.push_back(Pending{i, std::move(ticket), &shard});
  }

  // ONE WAL append + ONE group-commit fsync for the whole admitted set.
  // Saturation sheds the set all-or-nothing so no half of a batch is
  // durable while its other half never existed.
  if (config_.journal != nullptr && !admitted.empty()) {
    std::vector<const RunSpec*> jspecs;
    jspecs.reserve(admitted.size());
    for (const Pending& p : admitted) jspecs.push_back(&p.ticket->spec);
    util::Expected<std::vector<std::uint64_t>> seqs =
        config_.journal->append_batch(jspecs);
    if (!seqs) {
      for (const Pending& p : admitted) {
        release_reservation();
        n_rejected_.fetch_add(1);
        n_shed_journal_.fetch_add(1);
        rejected_counter().add();
        shed_journal_counter().add();
        results[p.index] = seqs.status();
      }
      admitted.clear();
    } else {
      for (std::size_t k = 0; k < admitted.size(); ++k)
        admitted[k].ticket->journal_seq = seqs.value()[k];
    }
  }

  // Stage in index order so admission sequences match N single submits.
  for (const Pending& p : admitted) {
    if (!stage(*p.shard, p.ticket)) {
      release_reservation();
      n_rejected_.fetch_add(1);
      rejected_counter().add();
      results[p.index] = shutting_down_status();
      continue;
    }
    results[p.index] = RunHandle(p.ticket, this);
  }
  if (!admitted.empty()) kick_dispatch();

  // Fan each primary's result — handle or shed status — out to its
  // coalesced followers.
  for (std::size_t i = 0; i < n; ++i)
    if (primary[i] != i) results[i] = results[primary[i]];
  return results;
}

void Scheduler::set_tenant_weight(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].weight = std::max(weight, 1e-9);
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] {
    return staged_.load() == 0 && queue_.empty() && running_.load() == 0;
  });
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = terminal_stats_;
    out.queue_p50_s = percentile(queue_latencies_s_, 0.50);
    out.queue_p99_s = percentile(queue_latencies_s_, 0.99);
  }
  out.submitted = n_submitted_.load();
  out.rejected = n_rejected_.load();
  out.shed_queue_full = n_shed_queue_full_.load();
  out.shed_rate_limited = n_shed_rate_limited_.load();
  out.shed_journal = n_shed_journal_.load();
  out.batches = n_batches_.load();
  out.batch_specs = n_batch_specs_.load();
  out.coalesced = n_coalesced_.load();
  out.peak_queue_depth = peak_queue_depth_.load();
  return out;
}

std::size_t Scheduler::queue_depth() const {
  const std::size_t occupied = occupied_.load();
  const std::size_t reserved = reserved_.load();
  return occupied > reserved ? occupied - reserved : 0;
}

Scheduler::TicketPtr Scheduler::pick_next() {
  // Pass 1: the tenant owed the most service — smallest dispatched/weight,
  // ties to the lexicographically smaller name so ordering is
  // deterministic regardless of submission interleaving.
  const std::string* best_tenant = nullptr;
  double best_share = std::numeric_limits<double>::infinity();
  for (const TicketPtr& ticket : queue_) {
    const Tenant& tenant = tenants_[ticket->spec.tenant];
    const double share =
        static_cast<double>(tenant.dispatched) / tenant.weight;
    if (best_tenant == nullptr || share < best_share ||
        (share == best_share && ticket->spec.tenant < *best_tenant)) {
      best_share = share;
      best_tenant = &ticket->spec.tenant;
    }
  }
  // Pass 2: within that tenant, highest priority first, then FIFO.
  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->spec.tenant != *best_tenant) continue;
    if (best == queue_.end() ||
        (*it)->spec.priority > (*best)->spec.priority ||
        ((*it)->spec.priority == (*best)->spec.priority &&
         (*it)->sequence < (*best)->sequence))
      best = it;
  }
  TicketPtr picked = *best;
  queue_.erase(best);
  return picked;
}

void Scheduler::maybe_dispatch() {
  drain_shards_locked();
  while (running_.load() < workers() && !queue_.empty()) {
    TicketPtr ticket = pick_next();
    occupied_.fetch_sub(1);
    queue_depth_gauge().set(static_cast<double>(queue_depth()));
    running_.fetch_add(1);
    terminal_stats_.peak_running =
        std::max(terminal_stats_.peak_running, running_.load());
    const double queued_s = seconds_since(ticket->submitted_at);
    queue_latencies_s_.push_back(queued_s);
    // Pre-dispatch: the executor (and any waiter, via the terminal-state
    // handshake) observes this write through the pool's queue ordering.
    ticket->outcome.queue_s = queued_s;
    tenants_[ticket->spec.tenant].dispatched++;
    inflight_.push_back(ticket);
    pool_->submit([this, ticket] { execute(ticket); });
  }
}

void Scheduler::execute(const TicketPtr& ticket) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->state = RunState::kRunning;
  }
  const RunSpec& spec = ticket->spec;
  RunOutcome outcome;
  outcome.queue_s = ticket->outcome.queue_s;
  util::Status status = util::Status::ok();
  const auto started = std::chrono::steady_clock::now();

  if (ticket->cancel.load(std::memory_order_relaxed)) {
    outcome.state = RunState::kCancelled;
    finish(ticket, std::move(outcome));
    return;
  }

  // Open the run's resource account (find-or-create, so a retried run
  // keeps accumulating against the same budget).  Null accountant = the
  // pre-accounting path, byte-identical.
  std::shared_ptr<res::RunAccount> account;
  if (config_.accountant != nullptr)
    account = config_.accountant->open(spec.name, spec.tenant, spec.budget);

  try {
    switch (spec.kind) {
      case WorkloadKind::kManaged: {
        core::ManagedRunConfig managed_config = spec.to_managed();
        managed_config.account = account.get();
        core::ManagedRun run(managed_config);
        {
          std::lock_guard<std::mutex> lock(ticket->mu);
          ticket->active = &run;
        }
        if (ticket->cancel.load(std::memory_order_relaxed))
          run.request_cancel();
        for (const FailurePlan& plan : spec.failures)
          run.schedule_failure(plan.at_s, plan.node, plan.downtime_s);
        if (spec.random_mtbf_s > 0.0 && spec.random_mttr_s > 0.0)
          run.start_random_failures(spec.random_mtbf_s, spec.random_mttr_s);
        outcome.managed = run.run();
        {
          std::lock_guard<std::mutex> lock(ticket->mu);
          ticket->active = nullptr;
        }
        break;
      }
      case WorkloadKind::kTraceReplay: {
        if (!spec.trace) {
          status = util::Status::invalid("trace replay without a trace");
          break;
        }
        const grid::Cluster cluster = build_cluster(spec);
        core::TraceRunConfig config = spec.to_trace();
        config.should_abort = [ticket, account] {
          return ticket->cancel.load(std::memory_order_relaxed) ||
                 (account != nullptr && account->should_stop());
        };
        const core::TraceRunner runner(*spec.trace, cluster, config);
        if (spec.strategy == "adaptive") {
          const policy::PolicyBase policies = policy::standard_policy_base();
          outcome.replay = runner.run_adaptive(policies);
        } else {
          outcome.replay = runner.run_static(spec.strategy);
        }
        break;
      }
      case WorkloadKind::kSystemSensitive: {
        if (!spec.trace) {
          status = util::Status::invalid(
              "system-sensitive experiment without a trace");
          break;
        }
        outcome.system_sensitive = core::run_system_sensitive_experiment(
            *spec.trace, spec.to_system_sensitive());
        break;
      }
      case WorkloadKind::kCustom: {
        if (!spec.custom) {
          status =
              util::Status::invalid("custom run without a workload callable");
          break;
        }
        RunContext context{[ticket, account] {
          return ticket->cancel.load(std::memory_order_relaxed) ||
                 (account != nullptr && account->should_stop());
        }};
        status = spec.custom(context);
        break;
      }
    }
  } catch (const std::exception& error) {
    status = util::Status::internal(std::string("run \"") + spec.name +
                                    "\" threw: " + error.what());
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->active = nullptr;
  }

  outcome.exec_s = seconds_since(started);

  // Budget classification runs first so a kill-action violation yields
  // exactly one terminal status (resource-exhausted), even when a caller
  // cancel raced the kill; accountant close() folds the run's usage into
  // the per-tenant aggregate exactly once.
  if (account != nullptr) {
    outcome.usage = account->usage();
    outcome.budget_throttled = account->throttled();
    if (status.is_ok() && account->should_stop())
      status = shed_status(util::StatusCode::kResourceExhausted,
                           ShedReason::kBudgetExhausted,
                           "run \"" + spec.name + "\": " +
                               account->violation(),
                           config_.shed_retry_after_ms);
    config_.accountant->close(account);
  }

  outcome.status = status;
  if (!status.is_ok()) {
    outcome.state = RunState::kFailed;
  } else if (ticket->cancel.load(std::memory_order_relaxed)) {
    outcome.state = RunState::kCancelled;
  } else {
    outcome.state = RunState::kCompleted;
  }
  finish(ticket, std::move(outcome));
}

void Scheduler::finish(const TicketPtr& ticket, RunOutcome outcome) {
  if (outcome.state == RunState::kFailed)
    util::log_warn("service: run \"", ticket->spec.name,
                   "\" failed: ", outcome.status.to_string());
  switch (outcome.state) {
    case RunState::kCompleted: completed_counter().add(); break;
    case RunState::kFailed: failed_counter().add(); break;
    case RunState::kCancelled: cancelled_counter().add(); break;
    default: break;
  }
  if (outcome.state == RunState::kFailed &&
      outcome.status.code() == util::StatusCode::kResourceExhausted)
    budget_killed_counter().add();
  if (outcome.budget_throttled) budget_throttled_counter().add();
  // Tombstone before taking mu_: the journal may compact (disk I/O) and
  // the scheduler lock must never be held across it.
  if (config_.journal != nullptr && ticket->journal_seq != 0)
    config_.journal->tombstone(ticket->journal_seq);
  std::lock_guard<std::mutex> lock(mu_);
  // Decrement before the dispatch sweep: a submitter that staged while we
  // held every slot either gets drained below or observes the lowered
  // running_ and kicks dispatch itself — no staged ticket is orphaned.
  running_.fetch_sub(1);
  inflight_.erase(std::find(inflight_.begin(), inflight_.end(), ticket));
  switch (outcome.state) {
    case RunState::kCompleted: ++terminal_stats_.completed; break;
    case RunState::kFailed: ++terminal_stats_.failed; break;
    case RunState::kCancelled: ++terminal_stats_.cancelled; break;
    default: break;
  }
  if (outcome.state == RunState::kFailed &&
      outcome.status.code() == util::StatusCode::kResourceExhausted)
    ++terminal_stats_.budget_killed;
  if (outcome.budget_throttled) ++terminal_stats_.budget_throttled;
  {
    std::lock_guard<std::mutex> ticket_lock(ticket->mu);
    ticket->state = outcome.state;
    ticket->outcome = std::move(outcome);
  }
  ticket->cv.notify_all();
  maybe_dispatch();
  idle_cv_.notify_all();
}

bool Scheduler::cancel_ticket(const TicketPtr& ticket) {
  bool withdrawn = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The ticket may still sit in a shard staging queue — centralize
    // first so the withdraw scan sees it.
    drain_shards_locked();
    const auto it = std::find(queue_.begin(), queue_.end(), ticket);
    if (it != queue_.end()) {
      queue_.erase(it);
      occupied_.fetch_sub(1);
      queue_depth_gauge().set(static_cast<double>(queue_depth()));
      ++terminal_stats_.cancelled;
      {
        std::lock_guard<std::mutex> ticket_lock(ticket->mu);
        ticket->cancel.store(true, std::memory_order_relaxed);
        ticket->state = RunState::kCancelled;
        ticket->outcome.state = RunState::kCancelled;
      }
      ticket->cv.notify_all();
      idle_cv_.notify_all();
      cancelled_counter().add();
      withdrawn = true;
    }
  }
  if (withdrawn) {
    if (config_.journal != nullptr && ticket->journal_seq != 0)
      config_.journal->tombstone(ticket->journal_seq);
    return true;
  }
  std::lock_guard<std::mutex> lock(ticket->mu);
  if (is_terminal(ticket->state)) return false;
  ticket->cancel.store(true, std::memory_order_relaxed);
  if (ticket->active != nullptr) ticket->active->request_cancel();
  return true;
}

}  // namespace pragma::service
