#include "pragma/service/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/policy/builtin.hpp"
#include "pragma/service/journal.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Service counters; every add() is a no-op while obs metrics are off.
obs::Counter& submitted_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.submitted");
  return counter;
}
obs::Counter& rejected_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.rejected");
  return counter;
}
obs::Counter& completed_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.completed");
  return counter;
}
obs::Counter& failed_counter() {
  static obs::Counter& counter = obs::metrics().counter("service.runs.failed");
  return counter;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.cancelled");
  return counter;
}
obs::Counter& shed_queue_full_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_queue_full");
  return counter;
}
obs::Counter& shed_rate_limited_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_rate_limited");
  return counter;
}
obs::Counter& shed_journal_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.sched.shed_journal");
  return counter;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("service.sched.queue_depth");
  return gauge;
}
obs::Counter& budget_killed_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.budget_killed");
  return counter;
}
obs::Counter& budget_throttled_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("service.runs.budget_throttled");
  return counter;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

const char* to_string(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kCompleted: return "completed";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

const std::string& RunHandle::name() const { return ticket_->spec.name; }

RunState RunHandle::state() const {
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->state;
}

bool RunHandle::cancel() {
  if (!valid()) return false;
  return scheduler_->cancel_ticket(ticket_);
}

const RunOutcome& RunHandle::wait() {
  std::unique_lock<std::mutex> lock(ticket_->mu);
  ticket_->cv.wait(lock, [&] { return is_terminal(ticket_->state); });
  return ticket_->outcome;
}

Scheduler::Scheduler(SchedulerConfig config, util::ThreadPool* pool)
    : config_(config),
      pool_(pool != nullptr ? pool : &util::shared_pool()) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

Scheduler::~Scheduler() {
  std::vector<TicketPtr> doomed;
  std::vector<TicketPtr> running;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    doomed.assign(queue_.begin(), queue_.end());
    queue_.clear();
    running = inflight_;
  }
  for (const TicketPtr& ticket : running) {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->cancel.store(true, std::memory_order_relaxed);
    if (ticket->active != nullptr) ticket->active->request_cancel();
  }
  for (const TicketPtr& ticket : doomed) {
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      ticket->state = RunState::kCancelled;
      ticket->outcome.state = RunState::kCancelled;
      ticket->outcome.status =
          util::Status::unavailable("scheduler shut down before dispatch");
    }
    ticket->cv.notify_all();
    // A clean shutdown resolves queued runs as cancelled (their callers
    // were told); tombstone so a restart does not resurrect them.
    if (config_.journal != nullptr && ticket->journal_seq != 0)
      config_.journal->tombstone(ticket->journal_seq);
  }
  drain();
}

std::size_t Scheduler::workers() const {
  if (config_.workers > 0) return config_.workers;
  return std::max<std::size_t>(1, pool_->size());
}

util::Status Scheduler::check_rate_limit(const std::string& tenant_name) {
  if (config_.rate_limit.rate_per_s <= 0.0) return util::Status::ok();
  Tenant& tenant = tenants_[tenant_name];
  const auto now = std::chrono::steady_clock::now();
  if (!tenant.bucket_primed) {
    tenant.bucket_primed = true;
    tenant.tokens = std::max(config_.rate_limit.burst, 1.0);
    tenant.last_refill = now;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - tenant.last_refill).count();
    tenant.tokens =
        std::min(std::max(config_.rate_limit.burst, 1.0),
                 tenant.tokens + elapsed * config_.rate_limit.rate_per_s);
    tenant.last_refill = now;
  }
  if (tenant.tokens < 1.0) {
    const double wait_s =
        (1.0 - tenant.tokens) / config_.rate_limit.rate_per_s;
    ++stats_.shed_rate_limited;
    ++stats_.rejected;
    rejected_counter().add();
    shed_rate_limited_counter().add();
    return unavailable_with_retry_after(
        "tenant \"" + tenant_name + "\" rate limited",
        static_cast<int>(wait_s * 1000.0) + 1);
  }
  tenant.tokens -= 1.0;
  return util::Status::ok();
}

util::Expected<RunHandle> Scheduler::submit(RunSpec spec) {
  return admit(std::move(spec), /*rate_limited=*/true, /*recovered_seq=*/0);
}

util::Expected<RunHandle> Scheduler::resubmit_recovered(
    RunSpec spec, std::uint64_t journal_seq) {
  return admit(std::move(spec), /*rate_limited=*/false, journal_seq);
}

util::Expected<RunHandle> Scheduler::admit(RunSpec spec, bool rate_limited,
                                           std::uint64_t recovered_seq) {
  TicketPtr ticket;
  // Phase 1 (under mu_): degradation-ladder checks, then reserve a queue
  // slot.  The reservation keeps concurrent submitters from
  // oversubscribing the queue while phase 2 runs unlocked.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      rejected_counter().add();
      return util::Status::unavailable("scheduler is shutting down");
    }
    if (rate_limited) {
      if (util::Status limited = check_rate_limit(spec.tenant);
          !limited.is_ok())
        return limited;
    }
    if (queue_.size() + reserved_ >= config_.queue_capacity) {
      ++stats_.rejected;
      ++stats_.shed_queue_full;
      rejected_counter().add();
      shed_queue_full_counter().add();
      return unavailable_with_retry_after(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
              std::to_string(config_.queue_capacity) + "); run \"" +
              spec.name + "\" shed",
          config_.shed_retry_after_ms);
    }
    ++reserved_;
    ticket = std::make_shared<detail::Ticket>();
    ticket->spec = std::move(spec);
    ticket->journal_seq = recovered_seq;
  }

  // Phase 2 (unlocked): the durable append — group-commit fsync happens
  // here, so the scheduler lock is never held across disk I/O.  Recovered
  // runs keep their original pending record instead of appending again.
  if (config_.journal != nullptr && recovered_seq == 0) {
    util::Expected<std::uint64_t> seq = config_.journal->append(ticket->spec);
    if (!seq) {
      std::lock_guard<std::mutex> lock(mu_);
      --reserved_;
      ++stats_.rejected;
      ++stats_.shed_journal;
      rejected_counter().add();
      shed_journal_counter().add();
      return seq.status();
    }
    ticket->journal_seq = seq.value();
  }

  // Phase 3 (under mu_): convert the reservation into a queue entry.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --reserved_;
    if (shutdown_) {
      // Shut down while appending: the journal keeps the pending record,
      // so a restart recovers the run instead of losing it silently.
      ++stats_.rejected;
      rejected_counter().add();
      return util::Status::unavailable("scheduler is shutting down");
    }
    ticket->sequence = next_sequence_++;
    ticket->submitted_at = std::chrono::steady_clock::now();
    queue_.push_back(ticket);
    ++stats_.submitted;
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
    maybe_dispatch();
  }
  submitted_counter().add();
  return RunHandle(std::move(ticket), this);
}

void Scheduler::set_tenant_weight(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].weight = std::max(weight, 1e-9);
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats out = stats_;
  out.queue_p50_s = percentile(queue_latencies_s_, 0.50);
  out.queue_p99_s = percentile(queue_latencies_s_, 0.99);
  return out;
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Scheduler::TicketPtr Scheduler::pick_next() {
  // Pass 1: the tenant owed the most service — smallest dispatched/weight,
  // ties to the lexicographically smaller name so ordering is
  // deterministic regardless of submission interleaving.
  const std::string* best_tenant = nullptr;
  double best_share = std::numeric_limits<double>::infinity();
  for (const TicketPtr& ticket : queue_) {
    const Tenant& tenant = tenants_[ticket->spec.tenant];
    const double share =
        static_cast<double>(tenant.dispatched) / tenant.weight;
    if (best_tenant == nullptr || share < best_share ||
        (share == best_share && ticket->spec.tenant < *best_tenant)) {
      best_share = share;
      best_tenant = &ticket->spec.tenant;
    }
  }
  // Pass 2: within that tenant, highest priority first, then FIFO.
  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->spec.tenant != *best_tenant) continue;
    if (best == queue_.end() ||
        (*it)->spec.priority > (*best)->spec.priority ||
        ((*it)->spec.priority == (*best)->spec.priority &&
         (*it)->sequence < (*best)->sequence))
      best = it;
  }
  TicketPtr picked = *best;
  queue_.erase(best);
  return picked;
}

void Scheduler::maybe_dispatch() {
  while (running_ < workers() && !queue_.empty()) {
    TicketPtr ticket = pick_next();
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
    ++running_;
    stats_.peak_running = std::max(stats_.peak_running, running_);
    const double queued_s = seconds_since(ticket->submitted_at);
    queue_latencies_s_.push_back(queued_s);
    // Pre-dispatch: the executor (and any waiter, via the terminal-state
    // handshake) observes this write through the pool's queue ordering.
    ticket->outcome.queue_s = queued_s;
    tenants_[ticket->spec.tenant].dispatched++;
    inflight_.push_back(ticket);
    pool_->submit([this, ticket] { execute(ticket); });
  }
}

void Scheduler::execute(const TicketPtr& ticket) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->state = RunState::kRunning;
  }
  const RunSpec& spec = ticket->spec;
  RunOutcome outcome;
  outcome.queue_s = ticket->outcome.queue_s;
  util::Status status = util::Status::ok();
  const auto started = std::chrono::steady_clock::now();

  if (ticket->cancel.load(std::memory_order_relaxed)) {
    outcome.state = RunState::kCancelled;
    finish(ticket, std::move(outcome));
    return;
  }

  // Open the run's resource account (find-or-create, so a retried run
  // keeps accumulating against the same budget).  Null accountant = the
  // pre-accounting path, byte-identical.
  std::shared_ptr<res::RunAccount> account;
  if (config_.accountant != nullptr)
    account = config_.accountant->open(spec.name, spec.tenant, spec.budget);

  try {
    switch (spec.kind) {
      case WorkloadKind::kManaged: {
        core::ManagedRunConfig managed_config = spec.to_managed();
        managed_config.account = account.get();
        core::ManagedRun run(managed_config);
        {
          std::lock_guard<std::mutex> lock(ticket->mu);
          ticket->active = &run;
        }
        if (ticket->cancel.load(std::memory_order_relaxed))
          run.request_cancel();
        for (const FailurePlan& plan : spec.failures)
          run.schedule_failure(plan.at_s, plan.node, plan.downtime_s);
        if (spec.random_mtbf_s > 0.0 && spec.random_mttr_s > 0.0)
          run.start_random_failures(spec.random_mtbf_s, spec.random_mttr_s);
        outcome.managed = run.run();
        {
          std::lock_guard<std::mutex> lock(ticket->mu);
          ticket->active = nullptr;
        }
        break;
      }
      case WorkloadKind::kTraceReplay: {
        if (!spec.trace) {
          status = util::Status::invalid("trace replay without a trace");
          break;
        }
        const grid::Cluster cluster = build_cluster(spec);
        core::TraceRunConfig config = spec.to_trace();
        config.should_abort = [ticket, account] {
          return ticket->cancel.load(std::memory_order_relaxed) ||
                 (account != nullptr && account->should_stop());
        };
        const core::TraceRunner runner(*spec.trace, cluster, config);
        if (spec.strategy == "adaptive") {
          const policy::PolicyBase policies = policy::standard_policy_base();
          outcome.replay = runner.run_adaptive(policies);
        } else {
          outcome.replay = runner.run_static(spec.strategy);
        }
        break;
      }
      case WorkloadKind::kSystemSensitive: {
        if (!spec.trace) {
          status = util::Status::invalid(
              "system-sensitive experiment without a trace");
          break;
        }
        outcome.system_sensitive = core::run_system_sensitive_experiment(
            *spec.trace, spec.to_system_sensitive());
        break;
      }
      case WorkloadKind::kCustom: {
        if (!spec.custom) {
          status =
              util::Status::invalid("custom run without a workload callable");
          break;
        }
        RunContext context{[ticket, account] {
          return ticket->cancel.load(std::memory_order_relaxed) ||
                 (account != nullptr && account->should_stop());
        }};
        status = spec.custom(context);
        break;
      }
    }
  } catch (const std::exception& error) {
    status = util::Status::internal(std::string("run \"") + spec.name +
                                    "\" threw: " + error.what());
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->active = nullptr;
  }

  outcome.exec_s = seconds_since(started);

  // Budget classification runs first so a kill-action violation yields
  // exactly one terminal status (resource-exhausted), even when a caller
  // cancel raced the kill; accountant close() folds the run's usage into
  // the per-tenant aggregate exactly once.
  if (account != nullptr) {
    outcome.usage = account->usage();
    outcome.budget_throttled = account->throttled();
    if (status.is_ok() && account->should_stop())
      status = resource_exhausted_with_retry_after(
          "run \"" + spec.name + "\": " + account->violation(),
          config_.shed_retry_after_ms);
    config_.accountant->close(account);
  }

  outcome.status = status;
  if (!status.is_ok()) {
    outcome.state = RunState::kFailed;
  } else if (ticket->cancel.load(std::memory_order_relaxed)) {
    outcome.state = RunState::kCancelled;
  } else {
    outcome.state = RunState::kCompleted;
  }
  finish(ticket, std::move(outcome));
}

void Scheduler::finish(const TicketPtr& ticket, RunOutcome outcome) {
  if (outcome.state == RunState::kFailed)
    util::log_warn("service: run \"", ticket->spec.name,
                   "\" failed: ", outcome.status.to_string());
  switch (outcome.state) {
    case RunState::kCompleted: completed_counter().add(); break;
    case RunState::kFailed: failed_counter().add(); break;
    case RunState::kCancelled: cancelled_counter().add(); break;
    default: break;
  }
  if (outcome.state == RunState::kFailed &&
      outcome.status.code() == util::StatusCode::kResourceExhausted)
    budget_killed_counter().add();
  if (outcome.budget_throttled) budget_throttled_counter().add();
  // Tombstone before taking mu_: the journal may compact (disk I/O) and
  // the scheduler lock must never be held across it.
  if (config_.journal != nullptr && ticket->journal_seq != 0)
    config_.journal->tombstone(ticket->journal_seq);
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  inflight_.erase(std::find(inflight_.begin(), inflight_.end(), ticket));
  switch (outcome.state) {
    case RunState::kCompleted: ++stats_.completed; break;
    case RunState::kFailed: ++stats_.failed; break;
    case RunState::kCancelled: ++stats_.cancelled; break;
    default: break;
  }
  if (outcome.state == RunState::kFailed &&
      outcome.status.code() == util::StatusCode::kResourceExhausted)
    ++stats_.budget_killed;
  if (outcome.budget_throttled) ++stats_.budget_throttled;
  {
    std::lock_guard<std::mutex> ticket_lock(ticket->mu);
    ticket->state = outcome.state;
    ticket->outcome = std::move(outcome);
  }
  ticket->cv.notify_all();
  maybe_dispatch();
  idle_cv_.notify_all();
}

bool Scheduler::cancel_ticket(const TicketPtr& ticket) {
  bool withdrawn = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), ticket);
    if (it != queue_.end()) {
      queue_.erase(it);
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
      ++stats_.cancelled;
      {
        std::lock_guard<std::mutex> ticket_lock(ticket->mu);
        ticket->cancel.store(true, std::memory_order_relaxed);
        ticket->state = RunState::kCancelled;
        ticket->outcome.state = RunState::kCancelled;
      }
      ticket->cv.notify_all();
      idle_cv_.notify_all();
      cancelled_counter().add();
      withdrawn = true;
    }
  }
  if (withdrawn) {
    if (config_.journal != nullptr && ticket->journal_seq != 0)
      config_.journal->tombstone(ticket->journal_seq);
    return true;
  }
  std::lock_guard<std::mutex> lock(ticket->mu);
  if (is_terminal(ticket->state)) return false;
  ticket->cancel.store(true, std::memory_order_relaxed);
  if (ticket->active != nullptr) ticket->active->request_cancel();
  return true;
}

}  // namespace pragma::service
