#include "pragma/service/admission.hpp"

#include <cstring>

namespace pragma::service {

const char* to_string(RunState state) {
  switch (state) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kCompleted: return "completed";
    case RunState::kFailed: return "failed";
    case RunState::kCancelled: return "cancelled";
  }
  return "?";
}

const std::string& RunHandle::name() const { return ticket_->spec.name; }

std::uint64_t RunHandle::id() const { return ticket_->run_id; }

RunState RunHandle::state() const {
  std::lock_guard<std::mutex> lock(ticket_->mu);
  return ticket_->state;
}

bool RunHandle::cancel() {
  if (!valid() || owner_ == nullptr) return false;
  {
    // Terminal tickets resolve here without touching the owner, so a
    // handle outliving its backend (e.g. a finished distributed burst)
    // stays safe to poke.
    std::lock_guard<std::mutex> lock(ticket_->mu);
    if (is_terminal(ticket_->state)) return false;
  }
  return owner_->cancel_ticket(ticket_);
}

const RunOutcome& RunHandle::wait() {
  std::unique_lock<std::mutex> lock(ticket_->mu);
  ticket_->cv.wait(lock, [&] { return is_terminal(ticket_->state); });
  return ticket_->outcome;
}

// ---------------------------------------------------------------------------
// ShedInfo
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kShedToken = " [shed=";
constexpr const char* kRetryToken = " [retry_after_ms=";
}  // namespace

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kRateLimited: return "rate-limited";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kJournalSaturated: return "journal-saturated";
    case ShedReason::kPayloadTooLarge: return "payload-too-large";
    case ShedReason::kBudgetExhausted: return "budget-exhausted";
    case ShedReason::kShuttingDown: return "shutting-down";
  }
  return "none";
}

bool ShedInfo::retryable(const util::Status& status) {
  switch (shed_info(status).reason) {
    case ShedReason::kRateLimited:
    case ShedReason::kQueueFull:
    case ShedReason::kJournalSaturated:
    case ShedReason::kBudgetExhausted:
      return true;
    case ShedReason::kPayloadTooLarge:
    case ShedReason::kShuttingDown:
      return false;
    case ShedReason::kNone:
      break;
  }
  // Untagged status: the historical convention — the two backpressure
  // codes are worth retrying, everything else is not.
  return status.code() == util::StatusCode::kUnavailable ||
         status.code() == util::StatusCode::kResourceExhausted;
}

util::Status shed_status(util::StatusCode code, ShedReason reason,
                         const std::string& message, int retry_after_ms) {
  std::string tagged = message;
  tagged += kShedToken;
  tagged += to_string(reason);
  tagged += ']';
  if (retry_after_ms >= 0) {
    tagged += kRetryToken;
    tagged += std::to_string(retry_after_ms);
    tagged += ']';
  }
  return util::Status(code, std::move(tagged));
}

namespace {

/// Parse the decimal payload of `token` ("...<token><digits>]...");
/// returns fallback when absent or malformed.
int parse_bracket_int(const std::string& message, const char* token,
                      int fallback) {
  const std::size_t start = message.rfind(token);
  if (start == std::string::npos) return fallback;
  std::size_t pos = start + std::strlen(token);
  long value = 0;
  bool any = false;
  while (pos < message.size() && message[pos] >= '0' && message[pos] <= '9') {
    if (value > (INT32_MAX - 9) / 10) return fallback;
    value = value * 10 + (message[pos] - '0');
    any = true;
    ++pos;
  }
  if (!any || pos >= message.size() || message[pos] != ']') return fallback;
  return static_cast<int>(value);
}

ShedReason parse_reason(const std::string& message) {
  const std::size_t start = message.rfind(kShedToken);
  if (start == std::string::npos) return ShedReason::kNone;
  const std::size_t begin = start + std::strlen(kShedToken);
  const std::size_t end = message.find(']', begin);
  if (end == std::string::npos) return ShedReason::kNone;
  const std::string token = message.substr(begin, end - begin);
  for (const ShedReason reason :
       {ShedReason::kRateLimited, ShedReason::kQueueFull,
        ShedReason::kJournalSaturated, ShedReason::kPayloadTooLarge,
        ShedReason::kBudgetExhausted, ShedReason::kShuttingDown}) {
    if (token == to_string(reason)) return reason;
  }
  return ShedReason::kNone;
}

}  // namespace

ShedInfo shed_info(const util::Status& status) {
  ShedInfo info;
  if (status.is_ok()) return info;
  info.reason = parse_reason(status.message());
  info.retry_after_ms = parse_bracket_int(status.message(), kRetryToken, -1);
  return info;
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

std::vector<util::Expected<RunHandle>> Admission::submit_batch(
    std::vector<RunSpec> specs) {
  std::vector<util::Expected<RunHandle>> results;
  results.reserve(specs.size());
  for (RunSpec& spec : specs) results.push_back(submit(std::move(spec)));
  return results;
}

}  // namespace pragma::service
