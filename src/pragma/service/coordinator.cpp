#include "pragma/service/coordinator.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>

#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"

namespace pragma::service {

namespace {

double attr_double(const agents::Message& message, const std::string& key) {
  const auto it = message.payload.find(key);
  if (it == message.payload.end()) return 0.0;
  if (const double* value = std::get_if<double>(&it->second)) return *value;
  return 0.0;
}

obs::Histogram& failover_histogram() {
  // Redispatch latencies range from sub-second (next sweep) to the full
  // confirm window; exponential buckets from 10 ms cover both ends.
  return obs::metrics().histogram(
      "service.dist.failover_redispatch_s",
      obs::HistogramOptions::exponential(0.01, 2.0, 16));
}

}  // namespace

const char* to_string(DistRunState state) {
  switch (state) {
    case DistRunState::kQueued: return "queued";
    case DistRunState::kLeased: return "leased";
    case DistRunState::kRunning: return "running";
    case DistRunState::kCompleted: return "completed";
    case DistRunState::kFailed: return "failed";
  }
  return "?";
}

Coordinator::Coordinator(sim::Simulator& simulator,
                         agents::MessageCenter& center,
                         agents::ReliableChannel& channel,
                         DistributedConfig config)
    : simulator_(simulator),
      center_(center),
      reliable_(channel),
      config_(std::move(config)),
      port_(dist::kCoordinatorPort),
      detector_(simulator, center, config_.heartbeat, "dist.hb.detector") {
  center_.register_port(port_,
                        [this](const agents::Message& m) { on_message(m); });
  reliable_.make_endpoint(port_);
  reliable_.set_failure_handler(
      [this](const agents::Message& message, int attempts) {
        ++stats_.reliable_failures;
        PRAGMA_FLIGHT(simulator_.now(), "dist.coord", "send failed to ",
                      message.to, " type ", message.type, " after ", attempts,
                      " attempts");
      });
  detector_.set_on_suspect([this](const agents::PortId& member, double now) {
    on_suspect(member, now);
  });
  detector_.set_on_confirm([this](const agents::PortId& member, double now) {
    on_confirm(member, now);
  });
  detector_.set_on_recover([this](const agents::PortId& member, double now) {
    on_recover(member, now);
  });
  detector_.start();
  sweep_handle_ = simulator_.schedule_periodic(config_.dispatch_period_s,
                                               [this] { sweep(); });
}

Coordinator::~Coordinator() {
  simulator_.cancel(sweep_handle_);
  detector_.stop();
  // The failure handler captures `this`; make sure a late-settling send
  // cannot call back into the corpse.
  reliable_.set_failure_handler(nullptr);
  // Backstop: no handle may be left blocking on a run that can no longer
  // finish (owners normally call resolve_pending themselves first).
  resolve_pending(util::Status::unavailable(
      "coordinator destroyed before the run finished"));
}

util::Expected<RunHandle> Coordinator::submit(RunSpec spec) {
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.shed;
    obs::metrics().counter("service.dist.shed").add();
    return shed_status(util::StatusCode::kUnavailable, ShedReason::kQueueFull,
                       "distributed admission queue full (" +
                           std::to_string(queue_.size()) + "/" +
                           std::to_string(config_.queue_capacity) +
                           " queued)",
                       config_.shed_retry_after_ms);
  }
  const std::uint64_t id = next_id_++;
  DistRun run;
  run.id = id;
  run.spec = std::move(spec);
  if (run.spec.kind == WorkloadKind::kManaged &&
      !run.spec.persist.enabled) {
    // Failover needs durable generations to resume from.
    run.spec.persist.enabled = true;
    run.spec.persist.dir =
        config_.checkpoint_root + "/run-" + std::to_string(id);
    run.spec.persist.checkpoint_interval_s =
        config_.forced_checkpoint_interval_s;
  }
  run.submitted_s = simulator_.now();
  run.last_activity_s = run.submitted_s;

  auto ticket = std::make_shared<detail::Ticket>();
  ticket->spec = run.spec;  // post-persist-forcing copy: what executes
  ticket->sequence = id;
  ticket->run_id = id;
  ticket->submitted_at = std::chrono::steady_clock::now();
  tickets_.emplace(id, ticket);

  runs_.emplace(id, std::move(run));
  queue_.push_back(id);
  ++stats_.submitted;
  obs::metrics().counter("service.dist.submitted").add();
  schedule_sweep_now();
  return RunHandle(std::move(ticket), this);
}

util::Expected<std::uint64_t> Coordinator::submit_id(RunSpec spec) {
  util::Expected<RunHandle> handle = submit(std::move(spec));
  if (!handle) return handle.status();
  return handle.value().id();
}

bool Coordinator::cancel_ticket(
    const std::shared_ptr<detail::Ticket>& ticket) {
  (void)ticket;
  return false;
}

void Coordinator::resolve_ticket(std::uint64_t id, const RunOutcome& outcome) {
  const auto it = tickets_.find(id);
  if (it == tickets_.end()) return;
  const std::shared_ptr<detail::Ticket> ticket = it->second;
  tickets_.erase(it);
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    if (is_terminal(ticket->state)) return;
    ticket->state = outcome.state;
    ticket->outcome = outcome;
  }
  ticket->cv.notify_all();
}

void Coordinator::resolve_pending(const util::Status& status) {
  // Drain the map first: resolve_ticket-style publication, but with a
  // synthesized terminal outcome for runs the plane will never finish.
  std::map<std::uint64_t, std::shared_ptr<detail::Ticket>> pending;
  pending.swap(tickets_);
  for (const auto& [id, ticket] : pending) {
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      if (is_terminal(ticket->state)) continue;
      ticket->state = status.is_ok() ? RunState::kCancelled : RunState::kFailed;
      ticket->outcome.state = ticket->state;
      ticket->outcome.status = status;
    }
    ticket->cv.notify_all();
  }
}

const DistRun* Coordinator::find(std::uint64_t id) const {
  const auto it = runs_.find(id);
  return it == runs_.end() ? nullptr : &it->second;
}

bool Coordinator::all_done() const {
  return std::all_of(runs_.begin(), runs_.end(), [](const auto& entry) {
    return is_terminal(entry.second.state);
  });
}

std::size_t Coordinator::workers_alive() const {
  return static_cast<std::size_t>(
      std::count_if(workers_.begin(), workers_.end(),
                    [](const auto& entry) { return !entry.second.dead; }));
}

const RunSpec* Coordinator::spec_for(std::uint64_t id) const {
  const auto it = runs_.find(id);
  return it == runs_.end() ? nullptr : &it->second.spec;
}

void Coordinator::deposit_outcome(std::uint64_t id, int attempt,
                                  RunOutcome outcome) {
  deposits_[{id, attempt}] = std::move(outcome);
}

void Coordinator::on_message(const agents::Message& message) {
  if (message.type == dist::kRegister) {
    on_register(message.from);
  } else if (message.type == dist::kProgress) {
    on_progress(message);
  } else if (message.type == dist::kComplete) {
    on_result(message, /*failed=*/false);
  } else if (message.type == dist::kFailed) {
    on_result(message, /*failed=*/true);
  } else if (message.type == dist::kRevokeOk) {
    on_revoke_reply(message, /*ok=*/true);
  } else if (message.type == dist::kRevokeNack) {
    on_revoke_reply(message, /*ok=*/false);
  }
}

void Coordinator::on_register(const agents::PortId& from) {
  auto [it, inserted] = workers_.try_emplace(from);
  WorkerInfo& worker = it->second;
  if (inserted) {
    worker.port = from;
    worker.registered_s = simulator_.now();
    ++stats_.registrations;
    obs::metrics().counter("service.dist.registrations").add();
  } else if (worker.dead) {
    // A confirmed-dead worker re-registering is a fresh process reusing
    // the name (or the old one back from a partition after its fence).
    // Either way it holds nothing: confirm-time requeue cleared its
    // leases, and the fence reset its local state.
    worker.dead = false;
    worker.leases.clear();
    ++stats_.rejoins;
    obs::metrics().counter("service.dist.rejoins").add();
  }
  PRAGMA_FLIGHT(simulator_.now(), "dist.coord", "worker ", from,
                inserted ? " registered" : " re-registered");
  detector_.watch(from);
  schedule_sweep_now();
}

void Coordinator::on_progress(const agents::Message& message) {
  const auto id = static_cast<std::uint64_t>(attr_double(message, "run"));
  const int attempt = static_cast<int>(attr_double(message, "attempt"));
  const auto it = runs_.find(id);
  if (it == runs_.end()) return;
  DistRun& run = it->second;
  if (run.attempt != attempt || run.assignee != message.from) return;
  if (run.state == DistRunState::kLeased) run.state = DistRunState::kRunning;
  run.steps_done = std::max(
      run.steps_done, static_cast<int>(attr_double(message, "steps")));
  run.last_activity_s = simulator_.now();
}

void Coordinator::on_result(const agents::Message& message, bool failed) {
  const auto id = static_cast<std::uint64_t>(attr_double(message, "run"));
  const int attempt = static_cast<int>(attr_double(message, "attempt"));
  const auto it = runs_.find(id);
  if (it == runs_.end()) return;
  DistRun& run = it->second;
  if (run.attempt != attempt) {
    // A fenced attempt finishing late: the run was already reassigned.
    ++stats_.stale_results_ignored;
    obs::metrics().counter("service.dist.stale_results").add();
    PRAGMA_FLIGHT(simulator_.now(), "dist.coord", "stale result run ", id,
                  " attempt ", attempt, " (current ", run.attempt, ")");
    return;
  }
  if (is_terminal(run.state)) return;
  detach_lease(run.assignee, id);
  const auto deposit = deposits_.find({id, attempt});
  if (deposit != deposits_.end()) {
    run.outcome = std::move(deposit->second);
    deposits_.erase(deposit);
  } else {
    run.outcome.state = failed ? RunState::kFailed : RunState::kCompleted;
    if (failed)
      run.outcome.status = util::Status::internal("worker reported failure");
  }
  run.state = failed ? DistRunState::kFailed : DistRunState::kCompleted;
  run.completed_s = simulator_.now();
  run.outcome.queue_s = run.first_dispatch_s - run.submitted_s;
  run.outcome.exec_s = run.completed_s - run.first_dispatch_s;
  if (failed) {
    ++stats_.failed;
    obs::metrics().counter("service.dist.failed").add();
  } else {
    ++stats_.completed;
    obs::metrics().counter("service.dist.completed").add();
  }
  PRAGMA_FLIGHT(simulator_.now(), "dist.coord", "run ", id,
                failed ? " failed on " : " completed on ",
                std::string(message.from));
  resolve_ticket(id, run.outcome);
  schedule_sweep_now();
}

void Coordinator::on_revoke_reply(const agents::Message& message, bool ok) {
  const auto id = static_cast<std::uint64_t>(attr_double(message, "run"));
  const int attempt = static_cast<int>(attr_double(message, "attempt"));
  const auto it = runs_.find(id);
  if (it == runs_.end()) return;
  DistRun& run = it->second;
  if (run.attempt != attempt || !run.steal_pending) return;
  run.steal_pending = false;
  if (!ok) {
    // The worker had already started it; leave the lease where it is.
    run.last_activity_s = simulator_.now();
    if (run.state == DistRunState::kLeased)
      run.state = DistRunState::kRunning;
    return;
  }
  if (run.state != DistRunState::kLeased) return;
  detach_lease(run.assignee, id);
  ++run.steals;
  ++stats_.steals;
  obs::metrics().counter("service.dist.steals").add();
  PRAGMA_FLIGHT(simulator_.now(), "dist.coord", "stole run ", id, " from ",
                std::string(message.from));
  requeue(run, message.from, /*failover=*/false);
  schedule_sweep_now();
}

void Coordinator::on_suspect(const agents::PortId& member, double now) {
  ++stats_.suspects;
  obs::metrics().counter("service.dist.suspects").add();
  PRAGMA_FLIGHT(now, "dist.coord", "worker ", member, " suspected");
  schedule_sweep_now();  // let the steal pass look at its queued leases
}

void Coordinator::on_confirm(const agents::PortId& member, double now) {
  ++stats_.confirms;
  obs::metrics().counter("service.dist.confirms").add();
  const auto it = workers_.find(member);
  if (it == workers_.end()) return;
  WorkerInfo& worker = it->second;
  worker.dead = true;
  // Retrying directives at a corpse only wastes the channel.
  reliable_.abandon_destination(member);
  // Fence: should the "corpse" actually be partitioned-but-alive, this
  // tells it (when reachable again) to discard local state and
  // re-register; anything it completes meanwhile is fenced by attempt.
  center_.send({port_, member, dist::kFence, {}, now});
  // Requeue every lease, started ones first (front of queue both ways,
  // so recovery preempts fresh work).
  const std::vector<std::uint64_t> leases = worker.leases;
  worker.leases.clear();
  for (auto lease_it = leases.rbegin(); lease_it != leases.rend();
       ++lease_it) {
    const auto run_it = runs_.find(*lease_it);
    if (run_it == runs_.end()) continue;
    DistRun& run = run_it->second;
    if (is_terminal(run.state)) continue;
    const bool started =
        run.state == DistRunState::kRunning || run.steps_done > 0;
    if (started) {
      ++run.failovers;
      ++stats_.failovers;
      obs::metrics().counter("service.dist.failovers").add();
    } else {
      ++stats_.requeued;
    }
    PRAGMA_FLIGHT(now, "dist.coord", started ? "failover run " : "requeue run ",
                  run.id, " from dead ", std::string(member));
    requeue(run, member, started);
  }
  schedule_sweep_now();
}

void Coordinator::on_recover(const agents::PortId& member, double now) {
  // A confirmed-dead worker is beating again (partition healed).  Its
  // leases were already requeued; fence it so it drops stale local state
  // and re-registers before receiving new work.
  PRAGMA_FLIGHT(now, "dist.coord", "worker ", member, " recovered; fencing");
  center_.send({port_, member, dist::kFence, {}, now});
}

void Coordinator::sweep() {
  const double now = simulator_.now();
  // Pass 1: lease expiry.  A lease silent past lease_s on a live worker is
  // fenced and redispatched (the worker may be wedged without being dead).
  for (auto& [id, run] : runs_) {
    if (run.state != DistRunState::kLeased &&
        run.state != DistRunState::kRunning)
      continue;
    if (now - run.last_activity_s < config_.lease_s) continue;
    const auto worker_it = workers_.find(run.assignee);
    if (worker_it == workers_.end() || worker_it->second.dead)
      continue;  // confirm-path handles dead owners
    ++stats_.lease_expiries;
    obs::metrics().counter("service.dist.lease_expiries").add();
    PRAGMA_FLIGHT(now, "dist.coord", "lease expired: run ", id, " on ",
                  run.assignee);
    const bool started =
        run.state == DistRunState::kRunning || run.steps_done > 0;
    detach_lease(run.assignee, id);
    requeue(run, worker_it->first, started);
  }

  // Pass 2: steal queued (never-started) leases from suspected workers,
  // and from backlogged live ones when someone else is idle.  Two-phase:
  // the lease moves only after the victim acks the revoke.
  bool idle_worker = false;
  for (const auto& [port, worker] : workers_) {
    if (!worker.dead && worker.leases.empty() &&
        detector_.liveness(port) == agents::Liveness::kAlive) {
      idle_worker = true;
      break;
    }
  }
  for (auto& [port, worker] : workers_) {
    if (worker.dead) continue;
    const bool suspected =
        detector_.liveness(port) == agents::Liveness::kSuspected;
    if (!suspected && !(idle_worker && worker.leases.size() >= 2)) continue;
    for (const std::uint64_t id : worker.leases) {
      const auto run_it = runs_.find(id);
      if (run_it == runs_.end()) continue;
      DistRun& run = run_it->second;
      if (run.state != DistRunState::kLeased || run.steal_pending) continue;
      run.steal_pending = true;
      agents::Message revoke{port_, port, dist::kRevoke, {}, now};
      revoke.payload["run"] = static_cast<double>(id);
      revoke.payload["attempt"] = static_cast<double>(run.attempt);
      reliable_.send(std::move(revoke));
      break;  // at most one steal per victim per sweep
    }
  }

  // Pass 3: grant queued runs to live workers with spare depth, fewest
  // leases first (port name breaks ties deterministically).
  while (!queue_.empty()) {
    WorkerInfo* best = nullptr;
    for (auto& [port, worker] : workers_) {
      if (worker.dead) continue;
      if (detector_.liveness(port) != agents::Liveness::kAlive) continue;
      if (worker.leases.size() >= config_.worker_queue_depth) continue;
      if (best == nullptr || worker.leases.size() < best->leases.size())
        best = &worker;
    }
    if (best == nullptr) break;  // degraded: stay queued, never lost
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    const auto run_it = runs_.find(id);
    if (run_it == runs_.end() || run_it->second.state != DistRunState::kQueued)
      continue;
    grant(id, *best);
  }
}

void Coordinator::grant(std::uint64_t id, WorkerInfo& worker) {
  DistRun& run = runs_.at(id);
  const double now = simulator_.now();
  run.state = DistRunState::kLeased;
  run.assignee = worker.port;
  if (run.first_dispatch_s < 0.0) run.first_dispatch_s = now;
  run.last_dispatch_s = now;
  run.last_activity_s = now;
  worker.leases.push_back(id);
  ++worker.leases_granted;
  ++stats_.leases_granted;
  obs::metrics().counter("service.dist.leases").add();
  if (run.pending_confirm_s >= 0.0) {
    const double latency = now - run.pending_confirm_s;
    run.failover_redispatches.emplace_back(run.pending_victim, now);
    stats_.failover_redispatch_s.push_back(latency);
    failover_histogram().observe(latency);
    run.pending_confirm_s = -1.0;
    run.pending_victim.clear();
  }
  agents::Message lease{port_, worker.port, dist::kLease, {}, now};
  lease.payload["run"] = static_cast<double>(id);
  lease.payload["attempt"] = static_cast<double>(run.attempt);
  lease.payload["resume"] = run.resume ? 1.0 : 0.0;
  lease.payload["steps"] = static_cast<double>(run.steps_done);
  reliable_.send(std::move(lease));
  PRAGMA_FLIGHT(now, "dist.coord", "lease run ", id, " attempt ",
                run.attempt, " -> ", worker.port);
}

void Coordinator::requeue(DistRun& run, const agents::PortId& victim,
                          bool failover) {
  ++run.attempt;  // fence: anything the old assignee still says is stale
  run.state = DistRunState::kQueued;
  run.assignee.clear();
  run.steal_pending = false;
  if (failover) {
    // The next assignee must restore from the durable store rather than
    // start over — that is the byte-identical recovery contract.
    run.resume = true;
    run.pending_victim = victim;
    run.pending_confirm_s = simulator_.now();
  }
  queue_.push_front(run.id);
}

void Coordinator::detach_lease(const agents::PortId& worker,
                               std::uint64_t id) {
  const auto it = workers_.find(worker);
  if (it == workers_.end()) return;
  auto& leases = it->second.leases;
  leases.erase(std::remove(leases.begin(), leases.end(), id), leases.end());
}

void Coordinator::schedule_sweep_now() {
  // One-shot sweep right after the triggering event settles; the periodic
  // sweep stays as the heartbeat of the dispatch loop.
  simulator_.schedule(0.0, [this] { sweep(); });
}

}  // namespace pragma::service
