#include "pragma/service/worker.hpp"

#include <algorithm>
#include <stdexcept>
#include <variant>

#include "pragma/core/trace_runner.hpp"
#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"
#include "pragma/policy/builtin.hpp"
#include "pragma/service/journal.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::service {

namespace {

double attr_double(const agents::Message& message, const std::string& key) {
  const auto it = message.payload.find(key);
  if (it == message.payload.end()) return 0.0;
  if (const double* value = std::get_if<double>(&it->second)) return *value;
  return 0.0;
}

/// Retry-after hint on distributed budget sheds (the Scheduler path uses
/// its configurable shed_retry_after_ms; here the default suffices).
constexpr int kBudgetShedRetryAfterMs = 50;

}  // namespace

Worker::Worker(sim::Simulator& simulator, agents::MessageCenter& center,
               agents::ReliableChannel& channel, Coordinator& coordinator,
               std::string name)
    : simulator_(simulator),
      center_(center),
      reliable_(channel),
      coordinator_(coordinator),
      port_(dist::kWorkerPortPrefix + name) {}

Worker::~Worker() {
  if (started_ && !dead_) kill();
}

void Worker::start() {
  if (dead_ || started_) return;
  center_.register_port(port_,
                        [this](const agents::Message& m) { on_message(m); });
  reliable_.make_endpoint(port_);
  started_ = true;
  // Announce, then beat immediately and every period: the coordinator's
  // watch() grants a grace window from registration, and the first beat
  // anchors it.
  send_control(dist::kRegister, 0, 0);
  beat();
  beat_handle_ = simulator_.schedule_periodic(
      coordinator_.config().heartbeat.period_s, [this] { beat(); });
}

void Worker::kill() {
  if (dead_) return;
  dead_ = true;
  simulator_.cancel(beat_handle_);
  simulator_.cancel(slice_handle_);
  center_.unregister_port(port_);
  assigned_.clear();
  active_.reset();
  PRAGMA_FLIGHT(simulator_.now(), "dist.worker", port_, " killed");
}

void Worker::stall(double seconds) {
  if (dead_ || !started_ || seconds <= 0.0) return;
  const double until = simulator_.now() + seconds;
  if (until <= stalled_until_) return;
  stalled_until_ = until;
  PRAGMA_FLIGHT(simulator_.now(), "dist.worker", port_, " stalled for ",
                seconds, "s");
  // First action on waking: beat, so a suspected worker un-suspects at
  // the earliest possible moment (the periodic chain keeps running but
  // its beats are suppressed until then).
  simulator_.schedule(seconds, [this] {
    if (!dead_ && simulator_.now() >= stalled_until_) beat();
  });
}

void Worker::beat() {
  if (dead_ || simulator_.now() < stalled_until_) return;
  center_.publish(coordinator_.config().heartbeat.topic,
                  {port_, coordinator_.config().heartbeat.topic, "heartbeat",
                   {}, simulator_.now()});
}

void Worker::on_message(const agents::Message& message) {
  if (dead_) return;
  if (message.type == dist::kLease) {
    on_lease(message);
  } else if (message.type == dist::kRevoke) {
    on_revoke(message);
  } else if (message.type == dist::kFence) {
    on_fence();
  }
}

void Worker::on_lease(const agents::Message& message) {
  Assignment assignment;
  assignment.id = static_cast<std::uint64_t>(attr_double(message, "run"));
  assignment.attempt = static_cast<int>(attr_double(message, "attempt"));
  assignment.resume = attr_double(message, "resume") > 0.0;
  assignment.steps_hint = static_cast<int>(attr_double(message, "steps"));
  if (active_ && active_->assignment.id == assignment.id) return;
  if (std::any_of(assigned_.begin(), assigned_.end(),
                  [&](const Assignment& queued) {
                    return queued.id == assignment.id;
                  }))
    return;
  assigned_.push_back(assignment);
  ++stats_.leases;
  PRAGMA_FLIGHT(simulator_.now(), "dist.worker", port_, " leased run ",
                assignment.id, " attempt ", assignment.attempt);
  maybe_start();
}

void Worker::on_revoke(const agents::Message& message) {
  const auto id = static_cast<std::uint64_t>(attr_double(message, "run"));
  const int attempt = static_cast<int>(attr_double(message, "attempt"));
  const auto it = std::find_if(assigned_.begin(), assigned_.end(),
                               [&](const Assignment& queued) {
                                 return queued.id == id &&
                                        queued.attempt == attempt;
                               });
  // Only a lease that has not started may be handed back; an active run
  // must refuse, otherwise it would execute twice.
  if (it == assigned_.end()) {
    ++stats_.revoke_refused;
    send_control(dist::kRevokeNack, id, attempt);
    return;
  }
  assigned_.erase(it);
  ++stats_.revoked;
  send_control(dist::kRevokeOk, id, attempt);
}

void Worker::on_fence() {
  // The coordinator has written this worker off: everything local is
  // stale (any lease it held was requeued under a bumped attempt).  Drop
  // it all and re-register as a blank worker.
  ++stats_.fences;
  simulator_.cancel(slice_handle_);
  slice_handle_ = sim::EventHandle();
  active_.reset();
  assigned_.clear();
  PRAGMA_FLIGHT(simulator_.now(), "dist.worker", port_, " fenced");
  send_control(dist::kRegister, 0, 0);
}

void Worker::maybe_start() {
  if (dead_ || !started_ || active_ || assigned_.empty()) return;
  Active active;
  active.assignment = assigned_.front();
  assigned_.pop_front();
  active.steps_done = active.assignment.steps_hint;
  active.resume_next = active.assignment.resume;
  active_ = std::move(active);
  // Claim the run before the first slice lands: a progress report moves
  // it to kRunning on the coordinator, taking it off the steal table.
  agents::Message progress{port_, coordinator_.port(), dist::kProgress, {},
                           simulator_.now()};
  progress.payload["run"] = static_cast<double>(active_->assignment.id);
  progress.payload["attempt"] =
      static_cast<double>(active_->assignment.attempt);
  progress.payload["steps"] = static_cast<double>(active_->steps_done);
  center_.send(std::move(progress));
  ++stats_.progress_sent;
  slice_handle_ = simulator_.schedule(0.0, [this] { run_slice(); });
}

void Worker::run_slice() {
  if (dead_ || !active_) return;
  if (simulator_.now() < stalled_until_) {
    slice_handle_ = simulator_.schedule(stalled_until_ - simulator_.now(),
                                        [this] { run_slice(); });
    return;
  }
  const RunSpec* spec = coordinator_.spec_for(active_->assignment.id);
  if (spec == nullptr) {
    RunOutcome outcome;
    outcome.state = RunState::kFailed;
    outcome.status = util::Status::not_found("spec for leased run missing");
    finish_active(std::move(outcome));
    return;
  }
  const int slice_steps = coordinator_.config().slice_steps;
  if (spec->kind != WorkloadKind::kManaged || !spec->persist.enabled ||
      slice_steps <= 0) {
    execute_unsliced(*spec);
    return;
  }

  Active& active = *active_;
  core::ManagedRunConfig config = spec->to_managed();
  // Accounts are find-or-create by run name: a run's usage accumulates
  // across slices and across failovers to another worker.
  std::shared_ptr<res::RunAccount> account;
  if (coordinator_.config().accountant != nullptr) {
    account = coordinator_.config().accountant->open(spec->name, spec->tenant,
                                                     spec->budget);
    config.account = account.get();
  }
  const int total = config.app.coarse_steps;
  const bool resume = active.resume_next || active.steps_done > 0;
  config.persist.resume = resume;
  const int target = active.steps_done + slice_steps;
  config.persist.halt_after_steps = target >= total ? -1 : target;
  if (resume) ++stats_.resumes;

  PRAGMA_SPAN_VAR(span, "service", "Worker.slice");
  span.annotate("run", static_cast<std::int64_t>(active.assignment.id));
  RunOutcome outcome;
  try {
    core::ManagedRun run(config);
    for (const FailurePlan& plan : spec->failures)
      run.schedule_failure(plan.at_s, plan.node, plan.downtime_s);
    if (spec->random_mtbf_s > 0.0 && spec->random_mttr_s > 0.0)
      run.start_random_failures(spec->random_mtbf_s, spec->random_mttr_s);
    core::ManagedRunReport report = run.run();
    ++stats_.slices;
    obs::metrics().counter("service.dist.slices").add();
    if (account != nullptr && account->should_stop()) {
      // Kill-action budget violation: the run stopped at a step boundary
      // inside this slice.  Shed it — no further slices.
      outcome.state = RunState::kFailed;
      outcome.status = shed_status(
          util::StatusCode::kResourceExhausted, ShedReason::kBudgetExhausted,
          "run \"" + spec->name + "\": " + account->violation(),
          kBudgetShedRetryAfterMs);
      outcome.usage = account->usage();
      coordinator_.config().accountant->close(account);
      finish_active(std::move(outcome));
      return;
    }
    if (report.halted) {
      active.steps_done = run.completed_steps();
      active.resume_next = true;
      agents::Message progress{port_, coordinator_.port(), dist::kProgress,
                               {}, simulator_.now()};
      progress.payload["run"] = static_cast<double>(active.assignment.id);
      progress.payload["attempt"] =
          static_cast<double>(active.assignment.attempt);
      progress.payload["steps"] = static_cast<double>(active.steps_done);
      center_.send(std::move(progress));
      ++stats_.progress_sent;
      slice_handle_ = simulator_.schedule(coordinator_.config().slice_sim_s,
                                          [this] { run_slice(); });
      return;
    }
    outcome.state = RunState::kCompleted;
    outcome.managed = std::move(report);
  } catch (const std::exception& error) {
    outcome.state = RunState::kFailed;
    outcome.status = util::Status::internal(
        std::string("run \"") + spec->name + "\" threw: " + error.what());
  }
  if (account != nullptr) {
    outcome.usage = account->usage();
    outcome.budget_throttled = account->throttled();
    coordinator_.config().accountant->close(account);
  }
  finish_active(std::move(outcome));
}

void Worker::execute_unsliced(const RunSpec& spec) {
  // Mirrors Scheduler::execute's per-kind dispatch, minus the cooperative
  // cancellation plumbing (the coordinator fences instead of cancelling).
  RunOutcome outcome;
  util::Status status = util::Status::ok();
  std::shared_ptr<res::RunAccount> account;
  if (coordinator_.config().accountant != nullptr)
    account = coordinator_.config().accountant->open(spec.name, spec.tenant,
                                                     spec.budget);
  try {
    switch (spec.kind) {
      case WorkloadKind::kManaged: {
        core::ManagedRunConfig config = spec.to_managed();
        config.account = account.get();
        core::ManagedRun run(config);
        for (const FailurePlan& plan : spec.failures)
          run.schedule_failure(plan.at_s, plan.node, plan.downtime_s);
        if (spec.random_mtbf_s > 0.0 && spec.random_mttr_s > 0.0)
          run.start_random_failures(spec.random_mtbf_s, spec.random_mttr_s);
        outcome.managed = run.run();
        break;
      }
      case WorkloadKind::kTraceReplay: {
        if (!spec.trace) {
          status = util::Status::invalid("trace replay without a trace");
          break;
        }
        const grid::Cluster cluster = build_cluster(spec);
        core::TraceRunConfig config = spec.to_trace();
        if (account != nullptr)
          config.should_abort = [account] { return account->should_stop(); };
        const core::TraceRunner runner(*spec.trace, cluster, config);
        if (spec.strategy == "adaptive") {
          const policy::PolicyBase policies = policy::standard_policy_base();
          outcome.replay = runner.run_adaptive(policies);
        } else {
          outcome.replay = runner.run_static(spec.strategy);
        }
        break;
      }
      case WorkloadKind::kSystemSensitive: {
        if (!spec.trace) {
          status = util::Status::invalid(
              "system-sensitive experiment without a trace");
          break;
        }
        outcome.system_sensitive = core::run_system_sensitive_experiment(
            *spec.trace, spec.to_system_sensitive());
        break;
      }
      case WorkloadKind::kCustom: {
        if (!spec.custom) {
          status =
              util::Status::invalid("custom run without a workload callable");
          break;
        }
        RunContext context{[account] {
          return account != nullptr && account->should_stop();
        }};
        status = spec.custom(context);
        break;
      }
    }
  } catch (const std::exception& error) {
    status = util::Status::internal(std::string("run \"") + spec.name +
                                    "\" threw: " + error.what());
  }
  if (account != nullptr) {
    outcome.usage = account->usage();
    outcome.budget_throttled = account->throttled();
    if (status.is_ok() && account->should_stop())
      status = shed_status(
          util::StatusCode::kResourceExhausted, ShedReason::kBudgetExhausted,
          "run \"" + spec.name + "\": " + account->violation(),
          kBudgetShedRetryAfterMs);
    coordinator_.config().accountant->close(account);
  }
  outcome.status = status;
  outcome.state = status.is_ok() ? RunState::kCompleted : RunState::kFailed;
  finish_active(std::move(outcome));
}

void Worker::finish_active(RunOutcome outcome) {
  const std::uint64_t id = active_->assignment.id;
  const int attempt = active_->assignment.attempt;
  const bool failed = outcome.state == RunState::kFailed;
  if (failed) {
    ++stats_.failures;
    util::log_warn("dist worker ", port_, ": run ", id,
                   " failed: ", outcome.status.to_string());
  } else {
    ++stats_.completions;
  }
  // Result blob out of band, completion directive over the reliable
  // channel (see Coordinator's data-plane note).
  coordinator_.deposit_outcome(id, attempt, std::move(outcome));
  send_control(failed ? dist::kFailed : dist::kComplete, id, attempt);
  active_.reset();
  slice_handle_ = sim::EventHandle();
  maybe_start();
}

void Worker::send_control(const std::string& type, std::uint64_t id,
                          int attempt) {
  agents::Message message{port_, coordinator_.port(), type, {},
                          simulator_.now()};
  if (type != dist::kRegister) {
    message.payload["run"] = static_cast<double>(id);
    message.payload["attempt"] = static_cast<double>(attempt);
  }
  reliable_.send(std::move(message));
}

DistributedService::DistributedService(DistributedConfig config,
                                       std::uint64_t seed)
    : config_(std::move(config)),
      center_(simulator_),
      reliable_(simulator_, center_, config_.reliable),
      coordinator_(
          std::make_unique<Coordinator>(simulator_, center_, reliable_,
                                        config_)),
      partitioned_(std::make_shared<std::set<agents::PortId>>()),
      seed_(seed) {
  // Disabled autoscaling constructs nothing and schedules nothing: the
  // event sequence of the fixed-pool service is untouched.
  if (config_.autoscale.enabled) {
    autoscaler_ = std::make_unique<res::PredictiveAutoscaler>(
        config_.autoscale);
    simulator_.schedule_periodic(autoscaler_->config().interval_s,
                                 [this] { autoscale_tick(); });
  }
}

Worker& DistributedService::add_worker(const std::string& name) {
  if (Worker* existing = worker(name); existing && existing->alive())
    return *existing;
  workers_.push_back(std::make_unique<Worker>(simulator_, center_, reliable_,
                                              *coordinator_, name));
  workers_.back()->start();
  return *workers_.back();
}

void DistributedService::schedule_join(double at_s, const std::string& name) {
  simulator_.schedule_at(at_s, [this, name] { add_worker(name); });
}

void DistributedService::schedule_kill(double at_s, const std::string& name) {
  simulator_.schedule_at(at_s, [this, name] {
    Worker* victim = worker(name);
    if (victim == nullptr || !victim->alive()) return;
    kills_.emplace_back(victim->port(), simulator_.now());
    victim->kill();
  });
}

void DistributedService::schedule_stall(double at_s, const std::string& name,
                                        double seconds) {
  simulator_.schedule_at(at_s, [this, name, seconds] {
    Worker* target = worker(name);
    if (target != nullptr && target->alive()) target->stall(seconds);
  });
}

void DistributedService::schedule_partition(double from_s, double until_s,
                                            std::vector<std::string> names) {
  if (!center_.faults().any()) {
    // A pure reachability predicate draws no randomness, so installing it
    // leaves every fault-free run byte-identical; the Rng is only there
    // to satisfy the interface.
    agents::ChannelFaults faults;
    faults.reachable = [cut = partitioned_](const agents::PortId& from,
                                            const agents::PortId& to) {
      // Blocked iff the cut separates the endpoints.
      return (cut->count(from) > 0) == (cut->count(to) > 0);
    };
    center_.set_faults(faults, util::Rng(seed_, 97));
  }
  std::vector<agents::PortId> ports;
  ports.reserve(names.size());
  for (const std::string& name : names) ports.push_back(port_of(name));
  simulator_.schedule_at(from_s, [this, ports] {
    for (const agents::PortId& port : ports) partitioned_->insert(port);
    PRAGMA_FLIGHT(simulator_.now(), "dist", "partition: ", ports.size(),
                  " worker(s) cut off");
  });
  simulator_.schedule_at(until_s, [this, ports] {
    for (const agents::PortId& port : ports) partitioned_->erase(port);
    PRAGMA_FLIGHT(simulator_.now(), "dist", "partition healed");
  });
}

util::Expected<RunHandle> DistributedService::submit_run(RunSpec spec) {
  return coordinator_->submit(std::move(spec));
}

std::vector<util::Expected<RunHandle>> DistributedService::submit_batch(
    std::vector<RunSpec> specs) {
  return coordinator_->submit_batch(std::move(specs));
}

util::Expected<std::uint64_t> DistributedService::submit(RunSpec spec) {
  return coordinator_->submit_id(std::move(spec));
}

util::Status DistributedService::run_until_done(double max_sim_s) {
  while (!coordinator_->all_done()) {
    if (simulator_.now() >= max_sim_s)
      return util::Status::unavailable(
          "distributed burst incomplete after " +
          std::to_string(simulator_.now()) + " simulated seconds");
    simulator_.run(simulator_.now() + 1.0);
  }
  return util::Status::ok();
}

Worker* DistributedService::worker(const std::string& name) {
  const agents::PortId port = port_of(name);
  // Newest first: a rejoined name refers to the replacement process.
  for (auto it = workers_.rbegin(); it != workers_.rend(); ++it)
    if ((*it)->port() == port) return it->get();
  return nullptr;
}

std::vector<double> DistributedService::recovery_latencies() const {
  std::vector<double> latencies;
  for (const auto& [id, run] : coordinator_->runs()) {
    for (const auto& [victim, redispatch_s] : run.failover_redispatches) {
      // Latest scheduled kill of that port at or before the redispatch.
      double kill_s = -1.0;
      for (const auto& [port, at_s] : kills_)
        if (port == victim && at_s <= redispatch_s) kill_s = std::max(kill_s, at_s);
      if (kill_s >= 0.0) latencies.push_back(redispatch_s - kill_s);
    }
  }
  return latencies;
}

std::size_t DistributedService::alive_workers() const {
  std::size_t alive = 0;
  for (const auto& worker : workers_)
    if (worker->alive()) ++alive;
  return alive;
}

void DistributedService::autoscale_tick() {
  // Demand = non-terminal runs, total and per tenant; feeding the series
  // every tick (including zeros) keeps the forecaster's trend honest.
  const double now = simulator_.now();
  double demand = 0.0;
  std::map<std::string, double> per_tenant;
  for (const auto& [id, run] : coordinator_->runs()) {
    if (is_terminal(run.state)) continue;
    demand += 1.0;
    per_tenant[run.spec.tenant] += 1.0;
  }
  autoscaler_->observe(now, demand);
  for (const auto& [tenant, count] : per_tenant)
    autoscaler_->observe_tenant(tenant, now, count);

  const std::size_t alive = alive_workers();
  const std::size_t desired = autoscaler_->desired_workers();
  obs::metrics().gauge("res.autoscale.workers").set(
      static_cast<double>(alive));

  if (desired > alive + pending_joins_) {
    // Scale up ahead of demand: each join pays the modeled spin-up delay,
    // which is exactly the latency the predictive lead time hides.
    const std::size_t add = desired - alive - pending_joins_;
    for (std::size_t i = 0; i < add; ++i) {
      const std::string name = "auto" + std::to_string(++auto_seq_);
      ++pending_joins_;
      simulator_.schedule(config_.autoscale.spinup_s, [this, name] {
        --pending_joins_;
        Worker& joined = add_worker(name);
        auto_ports_.insert(joined.port());
      });
      ++scale_ups_;
      obs::metrics().counter("res.autoscale.scale_ups").add();
    }
    autoscaler_->note_scaled(now);
    PRAGMA_FLIGHT(now, "dist.autoscale", "scale up: +", add, " (alive ",
                  alive, ", desired ", desired, ")");
  } else if (desired < alive &&
             autoscaler_->scale_down_due(now, alive)) {
    // Retire one idle autoscaler-joined worker per due tick; never touch
    // the base pool or a worker holding leases.
    for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
      Worker& candidate = **it;
      if (!candidate.alive() || !candidate.idle()) continue;
      if (auto_ports_.count(candidate.port()) == 0) continue;
      candidate.kill();
      auto_ports_.erase(candidate.port());
      ++scale_downs_;
      obs::metrics().counter("res.autoscale.scale_downs").add();
      autoscaler_->note_scaled(now);
      PRAGMA_FLIGHT(now, "dist.autoscale", "scale down: retired ",
                    candidate.port());
      break;
    }
  }
}

agents::PortId DistributedService::port_of(const std::string& name) {
  return dist::kWorkerPortPrefix + name;
}

}  // namespace pragma::service
