// Crash-durable pending-run journal: the admission write-ahead log.
//
// The scheduler's admission queue lives in memory, so before this layer a
// kill between Runtime admission and worker start silently lost every
// queued-but-unstarted RunSpec.  The journal closes that window: every
// admitted spec is serialized and appended — with a batched group-commit
// fsync — *before* submit() returns, completion/cancel appends a
// tombstone, and compaction rewrites the live set as a fresh sealed
// generation.  On startup, recovery replays the generations (validating
// every record, stopping at the first torn or bit-flipped frame, deduping
// by sequence and by RunSpec::journal_key) and hands the survivors back
// for resubmission, so a SIGKILL at any point between submit and
// completion loses nothing.  Execution is at-least-once; determinism
// (seeded runs, modeled costs) and checkpoint resume (persist.resume is
// forced on recovered specs with persistence enabled) fence the replay to
// effectively-once.
//
// On-disk layout: a directory of generation files written with the same
// tmp/fsync/rename discipline as io::CheckpointStore:
//
//   wal-00000001.pragma-wal
//   wal-00000002.pragma-wal     <- active generation, append-only
//
// Each file starts with a 16-byte sealed header and then holds
// self-delimiting records:
//
//   file header:  "PRGMWAL1" | u32 version | u32 CRC-32 of bytes [0,12)
//   record frame: "PJR1" | u32 type | u64 seq | u64 payload size
//                 | u32 payload CRC | u32 header CRC of bytes [0,28)
//                 | payload...
//
// type 1 = pending (payload: versioned RunSpec encoding), type 2 =
// tombstone (empty payload; the seq names the pending record it kills),
// type 3 = batch (payload: u32 count, then per item u64 seq | u64 size |
// RunSpec encoding — one frame, one payload CRC, one fsync for a whole
// submit_batch; the frame header's seq is the first item's).  A scan
// accepts the longest valid prefix of a file: the first frame that fails
// any check (magic, CRCs, declared size vs remaining bytes) ends the
// scan — torn tails from a crash mid-append are expected and benign.
// Batch frames expand into their individual pending records at scan
// time, so recovery replays them identically to single appends; a crash
// mid-batch loses the whole frame (its payload CRC cannot match),
// never half of it.  Compaction rewrites survivors as plain pending
// frames, so v1-era readers of compacted journals see no batch frames.
//
// Degradation ladder (loudest first):
//   1. saturation — the active generation exceeds max_active_bytes and
//      compaction cannot shrink it: append() sheds with
//      Status::unavailable carrying a retry-after hint;
//   2. journal-unwritable — an append hits EIO/ENOSPC: the journal
//      latches degraded mode, records a flight-recorder event and keeps
//      serving in-memory (admission continues, durability is honestly
//      lost until the disk recovers) instead of crashing the service.
//
// Everything is gated behind JournalConfig.enabled; with it false the
// service behaves byte-identically to a build without this layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pragma/service/run_spec.hpp"
#include "pragma/util/status.hpp"

namespace pragma::service {

/// Envelope constants, exposed for tests and the fuzzer.
inline constexpr char kJournalMagic[8] = {'P', 'R', 'G', 'M',
                                          'W', 'A', 'L', '1'};
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalFileHeaderBytes = 16;
inline constexpr char kJournalRecordMagic[4] = {'P', 'J', 'R', '1'};
inline constexpr std::size_t kJournalRecordHeaderBytes = 32;
/// Version tag of the RunSpec payload encoding (first u32 of the payload).
/// Version 2 appended the ResourceBudget fields; version-1 payloads from
/// pre-budget journals still decode (with default, unlimited budgets).
inline constexpr std::uint32_t kRunSpecPayloadVersion = 2;
inline constexpr std::uint32_t kRunSpecPayloadVersionV1 = 1;
inline constexpr std::uint64_t kDefaultJournalMaxPayloadBytes = 1ull << 20;

enum class JournalRecordType : std::uint32_t {
  kPending = 1,
  kTombstone = 2,
  /// One frame carrying many pending records (see the batch payload
  /// layout above).  Written by append_batch(); expanded back into
  /// individual kPending records by scan_journal_file().
  kBatch = 3,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kPending;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;  ///< empty for tombstones
};

/// Result of scanning one journal file image.  `records` is the longest
/// valid prefix; `valid_bytes` is where it ends; `tail` explains why the
/// scan stopped early (ok when the file ended exactly on a frame edge).
struct JournalScan {
  std::vector<JournalRecord> records;
  std::size_t valid_bytes = 0;
  util::Status tail = util::Status::ok();
};

/// Pure function over memory — the fuzzer entry point for the journal
/// loader.  Never trusts a length it just read; a hostile header cannot
/// demand more than `max_payload_bytes`.
[[nodiscard]] JournalScan scan_journal_file(
    const std::uint8_t* bytes, std::size_t size,
    std::uint64_t max_payload_bytes = kDefaultJournalMaxPayloadBytes);
[[nodiscard]] JournalScan scan_journal_file(
    const std::vector<std::uint8_t>& bytes,
    std::uint64_t max_payload_bytes = kDefaultJournalMaxPayloadBytes);

/// Sealed 16-byte file header for a fresh generation.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_file_header();
/// One framed record (header + payload), ready to append.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_record(
    JournalRecordType type, std::uint64_t seq,
    const std::vector<std::uint8_t>& payload);
/// One kBatch frame carrying every item (each treated as a pending
/// record: its seq + payload).  The frame header's seq is the first
/// item's.  Exposed for tests and the fuzzer corpus.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_batch_record(
    const std::vector<JournalRecord>& items);

/// Versioned RunSpec (de)serialization for pending payloads.  The
/// encoding covers every field reachable through the RunSpec value
/// surface; the non-value members — the custom callable, the shared
/// trace, the work-grid cache pointer and the process-wide obs config —
/// cannot be persisted, so only WorkloadKind::kManaged specs are
/// recoverable (others journal for accounting and are reported as
/// unrecoverable at recovery).
[[nodiscard]] std::vector<std::uint8_t> encode_run_spec(const RunSpec& spec);
[[nodiscard]] util::Expected<RunSpec> decode_run_spec(
    const std::vector<std::uint8_t>& payload);

struct JournalConfig {
  bool enabled = false;
  std::string dir = "pragma-journal";
  /// fsync (group-commit) every append before it returns.  Off trades the
  /// durability window for speed — records still reach the page cache.
  bool fsync = true;
  std::uint64_t max_payload_bytes = kDefaultJournalMaxPayloadBytes;
  /// Saturation cap on the active generation; beyond it (after an
  /// emergency compaction attempt) append() sheds Status::unavailable
  /// with a retry-after hint instead of growing without bound.
  std::uint64_t max_active_bytes = 256ull << 20;
  /// Auto-compaction trigger: at least this many tombstones AND
  /// tombstones >= compact_tombstone_ratio * records in the active
  /// generation.
  std::size_t compact_min_tombstones = 4096;
  double compact_tombstone_ratio = 0.5;
  /// Hint clients receive when the journal sheds on saturation.
  int shed_retry_after_ms = 100;
  /// Runtime: resubmit recovered pending specs at startup.
  bool auto_resubmit = true;

  // ---- test hooks (crash & fault injection; leave zero in production) --
  /// Simulate a crash during compact(): 1 = after writing the compacted
  /// tmp file but before rename (orphan left behind), 2 = after rename
  /// but before the old generations are deleted (overlapping live sets).
  int testing_crash_compact = 0;
  /// When set, every append() asks this hook first; a non-ok status is
  /// treated as the disk write failing (EIO injection).
  std::function<util::Status()> testing_append_error;
};

/// One recoverable pending run.
struct RecoveredRun {
  std::uint64_t seq = 0;
  RunSpec spec;
};

/// What recovery found across all generations.
struct JournalRecovery {
  std::vector<RecoveredRun> pending;  ///< decodable, runnable survivors
  /// Names of pendings whose tombstone made it to disk (completed or
  /// cancelled before the crash).
  std::vector<std::string> completed;
  std::size_t tombstoned = 0;
  /// Pending records that cannot be resubmitted: payload failed to
  /// decode, or the workload kind is not recoverable (custom callable,
  /// in-memory trace).
  std::size_t unrecoverable = 0;
  /// Files whose scan stopped before the end (torn tail, bit flip).
  std::size_t torn_files = 0;
  /// Duplicate pendings collapsed by RunSpec::journal_key or by seq
  /// overlap between generations (kill-during-compaction leftovers).
  std::size_t duplicates = 0;
};

struct JournalStats {
  std::uint64_t appends = 0;       ///< pending records (batch items count)
  std::uint64_t batch_appends = 0; ///< append_batch() calls
  std::uint64_t tombstones = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t compactions = 0;
  std::uint64_t shed_saturated = 0;
  std::uint64_t degraded_appends = 0;  ///< appends served in-memory only
  std::uint64_t active_bytes = 0;
  std::size_t live_pending = 0;
  bool degraded = false;
};

/// Build a Status::unavailable whose message carries a machine-readable
/// retry-after hint: "<message> [retry_after_ms=<ms>]".  Status itself
/// stays a (code, bounded message) pair — the hint travels inside the
/// message so it survives every existing plumbing layer unchanged.
/// Compatibility shim: new code builds sheds through shed_status() and
/// decodes them with shed_info() (admission.hpp), which additionally
/// carries the structured ShedReason tag.
[[nodiscard]] util::Status unavailable_with_retry_after(
    const std::string& message, int retry_after_ms);

/// Like unavailable_with_retry_after, for budget-kill sheds: a
/// Status::resource_exhausted carrying the same machine-readable
/// " [retry_after_ms=<ms>]" hint, so budget backpressure rides the
/// degradation ladder's existing retry convention.
[[nodiscard]] util::Status resource_exhausted_with_retry_after(
    const std::string& message, int retry_after_ms);

/// Parse the retry-after hint back out of a shed status; -1 when the
/// status carries none (not shed, or shed by a pre-hint layer).
[[nodiscard]] int retry_after_ms(const util::Status& status);

/// The write-ahead journal.  Thread-safe; appends from concurrent
/// submitters share group-commit fsyncs (the first waiter syncs for
/// everyone whose bytes are already on the file).
class Journal {
 public:
  explicit Journal(JournalConfig config);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Scan existing generations, rebuild the live set, compact it into a
  /// fresh generation and open that generation for appends.  Must be
  /// called (successfully) exactly once before append()/tombstone().
  /// Returns what was recovered; an empty directory recovers nothing.
  [[nodiscard]] util::Expected<JournalRecovery> open();

  /// Durably append a pending record for `spec` and return its sequence
  /// number.  Sheds with Status::unavailable (retry-after hint attached)
  /// on saturation; latches degraded mode on I/O failure and keeps
  /// serving (the returned seq is then in-memory only).
  [[nodiscard]] util::Expected<std::uint64_t> append(const RunSpec& spec);

  /// Durably append pending records for every spec with ONE write and ONE
  /// group-commit fsync (kBatch frames, chunked to the payload cap; a
  /// chunk of one degenerates to a plain kPending frame so a batch of one
  /// is byte-identical to append()).  All-or-nothing: saturation or an
  /// oversized payload sheds the whole batch and no sequence is consumed.
  /// Returns one sequence per spec, in order.
  [[nodiscard]] util::Expected<std::vector<std::uint64_t>> append_batch(
      const std::vector<const RunSpec*>& specs);

  /// Append a tombstone for `seq` (completion, failure or cancel).
  /// Unknown/duplicate seqs are harmless.  Best-effort in degraded mode.
  void tombstone(std::uint64_t seq);

  /// Rewrite the live pending set as a new sealed generation and delete
  /// the old ones.  Called automatically when tombstones accumulate and
  /// on saturation; callable explicitly.
  util::Status compact();

  [[nodiscard]] bool degraded() const;
  [[nodiscard]] JournalStats stats() const;
  [[nodiscard]] const JournalConfig& config() const { return config_; }
  /// Path of the active generation (tests inject corruption here).
  [[nodiscard]] std::string active_path() const;

 private:
  struct LivePending {
    std::string key;  ///< RunSpec::journal_key, for recovery dedupe
    std::string name;
    std::vector<std::uint8_t> payload;
  };

  [[nodiscard]] std::string path_for(std::uint64_t generation) const;
  [[nodiscard]] std::vector<std::uint64_t> generations() const;
  /// Append raw framed bytes to the active fd.  Requires mu_.  On
  /// success *watermark receives the monotonic append watermark covering
  /// this write (a cross-generation byte counter, never reset, so a
  /// commit target survives compaction swapping files underneath it).
  util::Status write_frame(const std::vector<std::uint8_t>& frame,
                           std::uint64_t* watermark);
  /// Group-commit: ensure everything appended up to watermark `target`
  /// is fsynced.  The first waiter syncs for the whole batch; later
  /// waiters find synced_watermark_ already past their target.  Takes
  /// commit_mu_ only (never mu_ — lock order is mu_ then commit_mu_).
  util::Status commit(std::uint64_t target);
  /// Requires mu_.  Latch degraded mode with a loud event.
  void enter_degraded(const util::Status& cause);
  /// Requires mu_.  compact() body.
  util::Status compact_locked();

  JournalConfig config_;

  mutable std::mutex mu_;  ///< file state + live set
  int fd_ = -1;  ///< written under mu_; fsynced under commit_mu_;
                 ///< swapped under both
  std::uint64_t active_generation_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t written_bytes_ = 0;  ///< bytes in the active file
  std::size_t tombstones_in_active_ = 0;
  std::size_t records_in_active_ = 0;
  std::map<std::uint64_t, LivePending> live_;
  bool opened_ = false;
  bool degraded_ = false;
  JournalStats stats_;
  /// Monotonic bytes-ever-appended counter (published under mu_, read
  /// lock-free by commit()).
  std::atomic<std::uint64_t> append_watermark_{0};
  std::atomic<std::uint64_t> fsync_count_{0};

  mutable std::mutex commit_mu_;  ///< group-commit; ordered after mu_
  std::uint64_t synced_watermark_ = 0;
};

}  // namespace pragma::service
