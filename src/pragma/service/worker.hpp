// Worker half of the elastic control plane, plus the DistributedService
// harness that deploys a coordinator and a worker pool over one shared
// control network.
//
// A Worker registers with the coordinator, proves liveness by publishing
// heartbeats, and executes leased runs one at a time (extra leases queue
// locally — the backlog work stealing rebalances).  Managed runs with a
// durable checkpoint store execute in *slices*: each slice constructs a
// core::ManagedRun that halts after a fixed number of coarse steps
// (SIGKILL-style, nothing flushed beyond the checkpoints already sealed)
// and the next slice resumes from the newest valid generation.  Between
// slices the worker yields control-plane time, which is exactly where
// churn lands: kill() between two slices leaves durable generations
// behind for another worker to resume from — the byte-identical failover
// path the PR-3 persistence layer guarantees.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "pragma/service/coordinator.hpp"

namespace pragma::service {

struct WorkerStats {
  std::size_t leases = 0;       ///< lease directives accepted
  std::size_t slices = 0;       ///< managed-run slices executed
  std::size_t completions = 0;  ///< runs finished and reported
  std::size_t failures = 0;     ///< runs that ended in an error status
  std::size_t resumes = 0;      ///< slices started with resume-from-store
  std::size_t revoked = 0;      ///< queued leases handed back (steal)
  std::size_t revoke_refused = 0;  ///< revoke of an already-started run
  std::size_t fences = 0;       ///< fence directives honoured
  std::size_t progress_sent = 0;
};

/// One worker process of the pool.  Like the Coordinator it is event-
/// driven: everything happens inside events of the shared simulator.
class Worker {
 public:
  /// `name` becomes port "dist.worker.<name>".  All references must
  /// outlive the worker.
  Worker(sim::Simulator& simulator, agents::MessageCenter& center,
         agents::ReliableChannel& channel, Coordinator& coordinator,
         std::string name);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Join the pool: register the port, start heartbeats, announce to the
  /// coordinator.  Idempotent while alive; a killed worker stays dead.
  void start();

  /// Permanent crash (SIGKILL): the port vanishes, heartbeats stop,
  /// queued and running work is abandoned mid-flight.  Only durable
  /// checkpoint generations survive for failover.
  void kill();

  /// Freeze for `seconds`: no heartbeats, no slice execution — but the
  /// port stays registered, so directives queue up.  Long stalls walk the
  /// worker through suspect (steal-eligible) and, past the confirm
  /// window, through confirmed-dead; a short stall ends with an immediate
  /// beat that un-suspects it with nothing lost.
  void stall(double seconds);

  [[nodiscard]] const agents::PortId& port() const { return port_; }
  [[nodiscard]] bool alive() const { return started_ && !dead_; }
  [[nodiscard]] bool idle() const { return !active_ && assigned_.empty(); }
  [[nodiscard]] const WorkerStats& stats() const { return stats_; }

 private:
  struct Assignment {
    std::uint64_t id = 0;
    int attempt = 0;
    bool resume = false;
    int steps_hint = 0;
  };
  struct Active {
    Assignment assignment;
    int steps_done = 0;
    bool resume_next = false;  ///< restore from the store on the next slice
  };

  void on_message(const agents::Message& message);
  void on_lease(const agents::Message& message);
  void on_revoke(const agents::Message& message);
  void on_fence();
  void beat();
  void maybe_start();
  /// Execute one slice of the active managed run (or the whole run for
  /// unsliced kinds); reschedules itself until the run finishes.
  void run_slice();
  void execute_unsliced(const RunSpec& spec);
  void finish_active(RunOutcome outcome);
  void send_control(const std::string& type, std::uint64_t id, int attempt);

  sim::Simulator& simulator_;
  agents::MessageCenter& center_;
  agents::ReliableChannel& reliable_;
  Coordinator& coordinator_;
  agents::PortId port_;
  bool started_ = false;
  bool dead_ = false;
  double stalled_until_ = -1.0;
  sim::EventHandle beat_handle_;
  sim::EventHandle slice_handle_;
  std::deque<Assignment> assigned_;
  std::optional<Active> active_;
  WorkerStats stats_;
};

/// Where a churn event lands relative to the burst.
struct ChurnEvent {
  double at_s = 0.0;
  std::string worker;  ///< name for joins, existing name for kill/stall
  double stall_s = 0.0;  ///< stall duration (stall events only)
};

/// A deployed distributed service: one simulator, one control network,
/// one coordinator, N workers — the whole thing deterministic at a fixed
/// seed, churn schedule included.
///
/// With DistributedConfig::autoscale.enabled the service also runs a
/// res::PredictiveAutoscaler: a periodic tick feeds the count of
/// non-terminal runs (total and per tenant) into the forecaster, joins
/// "auto<N>" workers ahead of predicted demand (each join lands after
/// the modeled spin-up delay), and retires idle auto-joined workers once
/// demand stays below capacity for the cool-down window.  Disabled (the
/// default) schedules no event at all — byte-identical to the fixed pool.
class DistributedService {
 public:
  explicit DistributedService(DistributedConfig config = {},
                              std::uint64_t seed = 40);

  /// Add a worker named `name` and start it now (before run_until_done)
  /// or at `at_s` (mid-burst join).
  Worker& add_worker(const std::string& name);
  void schedule_join(double at_s, const std::string& name);
  /// Schedule a permanent kill of worker `name` at simulated time `at_s`.
  void schedule_kill(double at_s, const std::string& name);
  void schedule_stall(double at_s, const std::string& name, double seconds);
  /// Partition the named workers away from the coordinator (and each
  /// other) during [from_s, until_s); heals afterwards.  Heartbeats and
  /// directives across the cut are dropped deterministically (predicate
  /// faults draw no randomness).
  void schedule_partition(double from_s, double until_s,
                          std::vector<std::string> workers);

  /// Admit a run through the coordinator's Admission surface.  The
  /// handle resolves while run_until_done pumps the simulator; wait() on
  /// it only after the burst finishes (single-threaded simulation).
  [[nodiscard]] util::Expected<RunHandle> submit_run(RunSpec spec);
  /// Batched admission (forwards to Coordinator::submit_batch).
  [[nodiscard]] std::vector<util::Expected<RunHandle>> submit_batch(
      std::vector<RunSpec> specs);

  /// \deprecated Pre-Admission shim returning the raw DistRun id; new
  /// code uses submit_run() and RunHandle::id().  Kept for one release.
  [[nodiscard]] util::Expected<std::uint64_t> submit(RunSpec spec);

  /// Drive the simulation until every submitted run is terminal (ok) or
  /// `max_sim_s` passes first (unavailable).
  [[nodiscard]] util::Status run_until_done(double max_sim_s = 3600.0);

  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] Worker* worker(const std::string& name);
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] agents::MessageCenter& center() { return center_; }

  /// Kill-to-redispatch latency of every failover that followed a
  /// scheduled kill (joins DistRun::failover_redispatches against the
  /// kill schedule; the detector's confirm window dominates).
  [[nodiscard]] std::vector<double> recovery_latencies() const;

  /// The autoscaler (null unless config.autoscale.enabled).
  [[nodiscard]] const res::PredictiveAutoscaler* autoscaler() const {
    return autoscaler_.get();
  }
  [[nodiscard]] std::size_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::size_t scale_downs() const { return scale_downs_; }
  [[nodiscard]] std::size_t alive_workers() const;

 private:
  [[nodiscard]] static agents::PortId port_of(const std::string& name);
  /// Periodic autoscale pass: observe demand, join/retire workers.
  void autoscale_tick();

  DistributedConfig config_;
  sim::Simulator simulator_;
  agents::MessageCenter center_;
  agents::ReliableChannel reliable_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// (worker port, kill time) of every scheduled kill that fired.
  std::vector<std::pair<agents::PortId, double>> kills_;
  /// Ports currently cut off; shared with the center's fault predicate.
  std::shared_ptr<std::set<agents::PortId>> partitioned_;
  std::uint64_t seed_;

  // ---- autoscaling (all inert while autoscale.enabled is false) --------
  std::unique_ptr<res::PredictiveAutoscaler> autoscaler_;
  std::set<agents::PortId> auto_ports_;  ///< workers the autoscaler joined
  std::size_t auto_seq_ = 0;             ///< next "auto<N>" name
  std::size_t pending_joins_ = 0;        ///< joins still inside spin-up
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;
};

}  // namespace pragma::service
