// Elastic coordinator/worker control plane (ROADMAP item 1).
//
// Where service::Scheduler executes many RunSpecs over one in-process
// thread pool, the Coordinator is the catalog half of a cctools-style
// distributed service: workers *register* with it over the control
// network, prove liveness by heartbeat, and are handed runs on renewable
// leases.  Everything rides the existing transport stack —
// MessageCenter (optionally lossy/partitioned) + ReliableChannel
// (ack/retry/backoff, duplicate-suppressed) + HeartbeatDetector
// (suspect -> confirm -> un-suspect, no oracle) — inside one
// deterministic discrete-event simulator, so every churn scenario
// replays bit-identically at a fixed seed.
//
// Failure semantics:
//   * A worker's silence first makes it *suspected*: its queued-not-yet-
//     started leases become eligible for stealing (two-phase revoke, so a
//     run is never executed twice), but its running run stays put — a
//     resumed heartbeat un-suspects it with no work lost.
//   * Only a *confirmed* death triggers failover: pending directives to
//     the corpse are abandoned, a fence message invalidates whatever it
//     might still do, and its in-flight runs are requeued with
//     `resume = true` so the next assignee restores from the run's
//     durable checkpoint generations (src/pragma/io) and finishes with
//     byte-identical final output.  Stale completions from a fenced
//     attempt are rejected by attempt number.
//   * Under partition the coordinator degrades, it does not fail:
//     admitted runs stay queued (queued-not-lost) and only submissions
//     beyond the admission bound are shed with Status::unavailable.
//
// The whole path sits behind DistributedConfig::enabled (see
// Runtime::Builder::distributed); with the knob off the single-process
// Scheduler path is untouched and byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pragma/agents/heartbeat.hpp"
#include "pragma/agents/message_center.hpp"
#include "pragma/agents/reliable.hpp"
#include "pragma/res/autoscaler.hpp"
#include "pragma/service/admission.hpp"
#include "pragma/service/run_spec.hpp"
#include "pragma/service/scheduler.hpp"
#include "pragma/sim/simulator.hpp"
#include "pragma/util/status.hpp"

namespace pragma::service {

/// Control-plane message types (the coordinator/worker wire protocol).
namespace dist {
inline const std::string kRegister = "dist.register";
inline const std::string kLease = "dist.lease";
inline const std::string kRevoke = "dist.revoke";
inline const std::string kRevokeOk = "dist.revoke_ok";
inline const std::string kRevokeNack = "dist.revoke_nack";
inline const std::string kProgress = "dist.progress";
inline const std::string kComplete = "dist.complete";
inline const std::string kFailed = "dist.failed";
inline const std::string kFence = "dist.fence";
inline const std::string kCoordinatorPort = "dist.coord";
inline const std::string kWorkerPortPrefix = "dist.worker.";
}  // namespace dist

/// The distributed-service knob set.  `enabled` is the ServiceConfig
/// switch: with it off nothing here is constructed and the in-process
/// Scheduler behaves byte-identically to before this layer existed.
struct DistributedConfig {
  bool enabled = false;
  /// Workers a Runtime-managed service spawns (harness-level deployments
  /// add workers explicitly and may ignore this).
  std::size_t workers = 4;
  /// Admission bound on *queued* (not yet leased) runs; submissions
  /// beyond it are shed with Status::unavailable.
  std::size_t queue_capacity = 64;
  /// Retry-after hint attached to queue-full sheds (same ladder slot as
  /// SchedulerConfig::shed_retry_after_ms).
  int shed_retry_after_ms = 50;
  /// Worker liveness: publish cadence and miss thresholds
  /// (suspect after 3 silent periods, confirm dead after 6).
  agents::HeartbeatConfig heartbeat{"dist.heartbeats", 1.0, 3, 6};
  /// Ack/retry/backoff protocol for every dispatch-path message.  Exposed
  /// through the one env/CLI merge path (--reliable-timeout,
  /// --reliable-backoff, --reliable-attempts; see add_run_flags).
  agents::ReliableConfig reliable;
  /// A lease with no progress for this long on a live worker is revoked
  /// and redispatched (fenced by attempt number).
  double lease_s = 60.0;
  /// Dispatch/steal/expiry sweep cadence.
  double dispatch_period_s = 0.5;
  /// Leases a worker may hold at once (1 running + the rest queued; the
  /// queued tail is what work stealing rebalances).
  std::size_t worker_queue_depth = 2;
  /// Managed runs execute in slices of this many coarse steps so worker
  /// death can land mid-run; each slice halts SIGKILL-style and the next
  /// resumes from the durable checkpoint store.  <= 0 = one slice.
  int slice_steps = 8;
  /// Modeled control-plane seconds a slice occupies (the real
  /// computation runs inside the slice event; this is the simulated
  /// duration that heartbeats, kills, and leases interleave with).
  double slice_sim_s = 2.0;
  /// Checkpoint directory root for managed runs submitted without
  /// persistence: the coordinator forces the durable store on (failover
  /// needs generations to resume from).
  std::string checkpoint_root = "pragma-dist-checkpoints";
  /// Forced checkpoint cadence (simulated seconds) for such runs.
  double forced_checkpoint_interval_s = 1.0;
  /// Predictive worker-pool autoscaling (DistributedService only).  Off
  /// by default: with enabled=false no autoscaler exists, no event is
  /// scheduled, and the service is byte-identical to the fixed-pool path.
  res::AutoscaleConfig autoscale;
  /// Per-run resource accounting for worker slices: accounts are keyed by
  /// run name, so usage accumulates across slices and failovers.  A
  /// kill-action budget violation fails the run with
  /// Status::resource_exhausted.  Not owned; null = accounting off
  /// (byte-identical legacy path).
  res::ResourceAccountant* accountant = nullptr;
};

enum class DistRunState { kQueued, kLeased, kRunning, kCompleted, kFailed };

[[nodiscard]] const char* to_string(DistRunState state);
[[nodiscard]] constexpr bool is_terminal(DistRunState state) {
  return state == DistRunState::kCompleted || state == DistRunState::kFailed;
}

/// Catalog entry for one submitted run.
struct DistRun {
  std::uint64_t id = 0;
  RunSpec spec;
  DistRunState state = DistRunState::kQueued;
  agents::PortId assignee;  ///< empty while queued
  /// Fencing epoch: bumped on every requeue; results stamped with an
  /// older attempt are ignored.
  int attempt = 0;
  /// Next assignee resumes from the durable checkpoint store.
  bool resume = false;
  int steps_done = 0;  ///< last progress report (managed runs)
  double submitted_s = 0.0;
  double first_dispatch_s = -1.0;
  double last_dispatch_s = 0.0;
  double last_activity_s = 0.0;
  double completed_s = 0.0;
  int failovers = 0;  ///< confirmed-death reassignments of a started run
  int steals = 0;     ///< two-phase steals of the queued lease
  /// (victim port, redispatch time) per failover — the harness joins this
  /// with its kill schedule to compute recovery latency.
  std::vector<std::pair<agents::PortId, double>> failover_redispatches;
  RunOutcome outcome;  ///< valid once state is terminal

 private:
  friend class Coordinator;
  bool steal_pending = false;
  agents::PortId pending_victim;     // set at confirm, cleared at redispatch
  double pending_confirm_s = -1.0;
};

struct CoordinatorStats {
  std::size_t submitted = 0;
  std::size_t shed = 0;  ///< rejected at admission (queue full)
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t registrations = 0;
  std::size_t rejoins = 0;  ///< confirmed-dead workers that came back
  std::size_t leases_granted = 0;
  std::size_t steals = 0;
  std::size_t failovers = 0;
  std::size_t requeued = 0;  ///< never-started leases of a dead worker
  std::size_t lease_expiries = 0;
  std::size_t suspects = 0;
  std::size_t confirms = 0;
  std::size_t stale_results_ignored = 0;  ///< fenced-attempt completions
  std::size_t reliable_failures = 0;      ///< sends that exhausted retries
  /// Confirm -> redispatch latency of every failover (detection latency
  /// is paid before this inside the heartbeat detector).
  std::vector<double> failover_redispatch_s;
};

/// The catalog/coordinator.  Single-threaded: every action happens inside
/// an event of the owning simulator, so decisions are deterministic.  It
/// implements the same Admission interface as the in-process Scheduler,
/// so Runtime::submit/submit_batch are backend-agnostic.  Note the
/// execution model difference: a distributed RunHandle resolves only
/// while the owning simulator runs (RunHandle::wait() from the sim
/// thread before pumping events would never return — use all_done() /
/// run_until_done loops, then read the handles).
class Coordinator : public Admission, public detail::TicketOwner {
 public:
  /// Registers the coordinator port, makes it a reliable endpoint, starts
  /// the heartbeat detector and the periodic dispatch sweep.  `simulator`,
  /// `center`, and `channel` must outlive the coordinator.
  Coordinator(sim::Simulator& simulator, agents::MessageCenter& center,
              agents::ReliableChannel& channel, DistributedConfig config = {});
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Admit a run.  Sheds with a ShedInfo-tagged Status::unavailable
  /// (queue-full reason + retry-after hint) beyond the admission bound.
  /// Managed runs without durable persistence get the checkpoint store
  /// forced on (failover needs generations to resume from).  The
  /// handle's id() is the DistRun id (find()/runs() key).
  [[nodiscard]] util::Expected<RunHandle> submit(RunSpec spec) override;

  /// \deprecated Pre-Admission shim returning the raw DistRun id; new
  /// code uses submit() and RunHandle::id().  Kept for one release.
  [[nodiscard]] util::Expected<std::uint64_t> submit_id(RunSpec spec);

  /// Resolve every non-terminal handle with `status` (state kFailed, or
  /// kCancelled when `status` is ok).  Call before tearing down the
  /// control plane so no RunHandle is left waiting on a run that can no
  /// longer finish; the destructor does this with an "unavailable" status
  /// as a backstop.
  void resolve_pending(const util::Status& status);

  [[nodiscard]] const DistRun* find(std::uint64_t id) const;
  [[nodiscard]] const std::map<std::uint64_t, DistRun>& runs() const {
    return runs_;
  }
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t workers_alive() const;
  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] const DistributedConfig& config() const { return config_; }
  [[nodiscard]] agents::HeartbeatDetector& detector() { return detector_; }
  [[nodiscard]] const agents::PortId& port() const { return port_; }

  // ---- worker-facing data plane ---------------------------------------
  // Control messages carry identifiers only; the spec and result blobs
  // move out of band (modeling the bulk-data transfer a real deployment
  // would do over a separate channel).  A worker may only *act* on these
  // after the corresponding control message arrived through the center.
  [[nodiscard]] const RunSpec* spec_for(std::uint64_t id) const;
  void deposit_outcome(std::uint64_t id, int attempt, RunOutcome outcome);

 private:
  struct WorkerInfo {
    agents::PortId port;
    bool dead = false;
    std::vector<std::uint64_t> leases;  // dispatch order
    std::uint64_t leases_granted = 0;
    double registered_s = 0.0;
  };

  /// Distributed cancellation is not supported (a lease in flight cannot
  /// be revoked through the handle yet): always false.
  bool cancel_ticket(const std::shared_ptr<detail::Ticket>& ticket) override;
  /// Publish a terminal run's outcome to its ticket and wake waiters.
  void resolve_ticket(std::uint64_t id, const RunOutcome& outcome);

  void on_message(const agents::Message& message);
  void on_register(const agents::PortId& from);
  void on_progress(const agents::Message& message);
  void on_result(const agents::Message& message, bool failed);
  void on_revoke_reply(const agents::Message& message, bool ok);
  void on_suspect(const agents::PortId& member, double now);
  void on_confirm(const agents::PortId& member, double now);
  void on_recover(const agents::PortId& member, double now);

  /// Expiry scan + steal pass + grant pass.
  void sweep();
  void grant(std::uint64_t id, WorkerInfo& worker);
  /// Requeue (front) with a bumped attempt; `failover` marks a started
  /// run being recovered (records victim + confirm time for latency).
  void requeue(DistRun& run, const agents::PortId& victim, bool failover);
  void detach_lease(const agents::PortId& worker, std::uint64_t id);
  void schedule_sweep_now();

  sim::Simulator& simulator_;
  agents::MessageCenter& center_;
  agents::ReliableChannel& reliable_;
  DistributedConfig config_;
  agents::PortId port_;
  agents::HeartbeatDetector detector_;
  sim::EventHandle sweep_handle_;

  std::map<agents::PortId, WorkerInfo> workers_;
  std::map<std::uint64_t, DistRun> runs_;
  /// RunHandle tickets by DistRun id; erased once resolved terminal.
  std::map<std::uint64_t, std::shared_ptr<detail::Ticket>> tickets_;
  std::deque<std::uint64_t> queue_;  // queued run ids, dispatch order
  std::map<std::pair<std::uint64_t, int>, RunOutcome> deposits_;
  std::uint64_t next_id_ = 1;
  CoordinatorStats stats_;
};

}  // namespace pragma::service
