// The one submission surface every backend implements.
//
// Before this layer each admission backend grew its own front door:
// Scheduler::submit returned Expected<RunHandle>, Coordinator::submit
// returned Expected<uint64_t>, and batch submission was an ad-hoc loop in
// every caller.  `Admission` unifies them: submit one spec or a batch,
// get RunHandles back, regardless of whether the runs execute on the
// in-process thread pool or the distributed coordinator/worker plane.
//
// This header also owns the *structured* shed vocabulary.  Backpressure
// statuses used to be classified by string-parsing " [retry_after_ms=N]"
// out of the message; that parser survives for compatibility (see
// retry_after_ms() in journal.hpp), but the primary mechanism is now
// ShedInfo: every admission-time rejection is built through shed_status()
// which tags the message with a machine-readable reason token, and
// shed_info() decodes reason + retry hint in one call.  The full
// classification table — which reason rides which status code, and which
// are worth retrying — lives with the shed ladder in scheduler.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pragma/service/run_spec.hpp"
#include "pragma/util/status.hpp"

namespace pragma::service {

enum class RunState { kQueued, kRunning, kCompleted, kFailed, kCancelled };

[[nodiscard]] const char* to_string(RunState state);
[[nodiscard]] constexpr bool is_terminal(RunState state) {
  return state == RunState::kCompleted || state == RunState::kFailed ||
         state == RunState::kCancelled;
}

/// Everything a finished run produced.  Exactly one of the per-kind
/// payloads is meaningful, selected by the spec's WorkloadKind.
struct RunOutcome {
  RunState state = RunState::kQueued;
  util::Status status;  ///< non-ok explains kFailed
  core::ManagedRunReport managed;
  core::RunSummary replay;
  core::SystemSensitiveResult system_sensitive;
  double queue_s = 0.0;  ///< admission -> dispatch wall time
  double exec_s = 0.0;   ///< dispatch -> completion wall time
  /// The run finished under a throttle-action budget violation (it ran to
  /// completion, slowed by ResourceBudget::throttle_factor).
  bool budget_throttled = false;
  /// Per-run resource usage (all-zero when no accountant is configured).
  res::ResourceUsage usage;
};

namespace detail {

struct Ticket;

/// The backend half of a RunHandle: whoever issued the ticket services
/// its cancel requests.  Implemented by Scheduler and Coordinator.
class TicketOwner {
 public:
  virtual ~TicketOwner() = default;
  virtual bool cancel_ticket(const std::shared_ptr<Ticket>& ticket) = 0;
};

/// Shared state of one submitted run.  Lock ordering: a thread holding a
/// backend lock (Scheduler::mu_ / a shard mutex) may take Ticket::mu,
/// never the reverse.
struct Ticket {
  RunSpec spec;
  std::uint64_t sequence = 0;
  /// Backend-assigned run id surfaced through RunHandle::id() (the
  /// scheduler uses its admission sequence, the coordinator its DistRun
  /// id).
  std::uint64_t run_id = 0;
  /// Journal sequence of this run's pending record (0 = not journaled);
  /// the terminal-state transition appends the matching tombstone.
  std::uint64_t journal_seq = 0;
  std::chrono::steady_clock::time_point submitted_at;
  std::mutex mu;
  std::condition_variable cv;
  RunState state = RunState::kQueued;  // guarded by mu
  RunOutcome outcome;                  // stable once state is terminal
  std::atomic<bool> cancel{false};
  core::ManagedRun* active = nullptr;  // guarded by mu; only while running
};

}  // namespace detail

/// Async handle to a submitted run: status, cooperative cancel, blocking
/// join.  Copyable; all copies observe the same run.  Handles returned
/// from a coalesced batch submission may share one execution — they all
/// observe the same outcome (and a cancel through any of them cancels
/// that shared execution).
class RunHandle {
 public:
  RunHandle() = default;

  [[nodiscard]] bool valid() const { return ticket_ != nullptr; }
  [[nodiscard]] const std::string& name() const;
  /// Backend-assigned run id (scheduler admission sequence or distributed
  /// DistRun id).  Coalesced handles share their primary's id.
  [[nodiscard]] std::uint64_t id() const;
  [[nodiscard]] RunState state() const;
  [[nodiscard]] bool done() const { return is_terminal(state()); }

  /// Request cancellation.  Queued runs are withdrawn immediately; running
  /// ones stop at their next cooperative boundary.  Returns false when the
  /// run had already reached a terminal state or the backend does not
  /// support cancellation (distributed runs).
  bool cancel();

  /// Block until the run reaches a terminal state.  The returned reference
  /// stays valid for the handle's lifetime.
  const RunOutcome& wait();

 private:
  friend class Scheduler;
  friend class Coordinator;
  RunHandle(std::shared_ptr<detail::Ticket> ticket, detail::TicketOwner* owner)
      : ticket_(std::move(ticket)), owner_(owner) {}

  std::shared_ptr<detail::Ticket> ticket_;
  detail::TicketOwner* owner_ = nullptr;
};

// ---------------------------------------------------------------------------
// Structured shed classification (see the ladder table in scheduler.hpp)
// ---------------------------------------------------------------------------

/// Why an admission-time rejection happened.  Encoded into the status
/// message as a machine-readable " [shed=<token>]" tag by shed_status()
/// and decoded by shed_info().
enum class ShedReason {
  kNone = 0,          ///< status carries no shed tag (not an admission shed)
  kRateLimited,       ///< per-tenant token bucket empty
  kQueueFull,         ///< bounded admission queue at capacity
  kJournalSaturated,  ///< WAL live set over max_active_bytes
  kPayloadTooLarge,   ///< spec exceeds the journal payload cap
  kBudgetExhausted,   ///< per-run resource budget violated
  kShuttingDown,      ///< backend is tearing down
};

[[nodiscard]] const char* to_string(ShedReason reason);

/// Decoded backpressure metadata of a shed status.
struct ShedInfo {
  ShedReason reason = ShedReason::kNone;
  /// Parsed " [retry_after_ms=N]" hint; -1 when the status carries none.
  int retry_after_ms = -1;

  /// Whether resubmitting the same spec later can succeed.  Reason-based
  /// for tagged statuses; untagged ones fall back to the historical
  /// code-based convention (kUnavailable / kResourceExhausted retry).
  [[nodiscard]] static bool retryable(const util::Status& status);
};

/// Build a shed status: `code` + message tagged with " [shed=<reason>]"
/// and, when `retry_after_ms >= 0`, the " [retry_after_ms=N]" hint the
/// legacy parser understands.
[[nodiscard]] util::Status shed_status(util::StatusCode code,
                                       ShedReason reason,
                                       const std::string& message,
                                       int retry_after_ms);

/// Decode the reason tag and retry hint of a status.  Statuses from
/// pre-ShedInfo layers (no tag) come back with reason kNone and whatever
/// hint their message carries.
[[nodiscard]] ShedInfo shed_info(const util::Status& status);

// ---------------------------------------------------------------------------
// The common admission interface
// ---------------------------------------------------------------------------

/// One submit API for every backend.  Scheduler (in-process pool) and
/// Coordinator (distributed control plane) both implement it, so
/// Runtime::submit / Runtime::submit_batch are backend-agnostic.
class Admission {
 public:
  virtual ~Admission() = default;

  /// Admit one run.  Sheds with a ShedInfo-tagged status under
  /// backpressure (see the ladder table in scheduler.hpp).
  [[nodiscard]] virtual util::Expected<RunHandle> submit(RunSpec spec) = 0;

  /// Admit a batch, returning one result per spec in order.  Partial
  /// admission is normal: a shed item's slot carries its own status while
  /// the rest proceed.  The default implementation is a loop over
  /// submit(); backends override it to amortize (the scheduler journals a
  /// whole batch with one WAL append + one fsync and coalesces identical
  /// specs onto one execution).
  [[nodiscard]] virtual std::vector<util::Expected<RunHandle>> submit_batch(
      std::vector<RunSpec> specs);
};

}  // namespace pragma::service
