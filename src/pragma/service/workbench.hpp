// Workbench: an open testbed assembled from a RunSpec.
//
// Where Scheduler/Runtime execute *closed* workloads end to end, some
// programs want the parts on the bench with the wires exposed — drive the
// simulator by hand, attach custom sensors and actuators, install policy
// rules at runtime, read monitor series directly.  Workbench owns the
// standard wiring (simulator, cluster, background load, failure injector,
// NWS monitor, and a lazily built agent environment) and hands out
// references, replacing the per-example copies of that boilerplate.
//
// RNG stream layout (all keyed off spec.seed): 0 = cluster build,
// 1 = background load, 2 = monitor noise — matching the historical
// interactive examples, not ManagedRun's layout.
#pragma once

#include <memory>

#include "pragma/agents/mcs.hpp"
#include "pragma/grid/failure.hpp"
#include "pragma/grid/loadgen.hpp"
#include "pragma/monitor/resource_monitor.hpp"
#include "pragma/policy/builtin.hpp"
#include "pragma/service/run_spec.hpp"
#include "pragma/service/runtime.hpp"
#include "pragma/sim/simulator.hpp"

namespace pragma::service {

/// Capped exponential backoff for admission retries.  A shed status's
/// ShedInfo::retry_after_ms hint, when present, overrides the
/// exponential wait for that attempt; every wait is capped at cap_ms.
struct RetryBackoff {
  int base_ms = 10;
  int cap_ms = 1000;
  int max_attempts = 8;
};

/// Submit with retry: when admission sheds the run with a retryable
/// status (ShedInfo::retryable — tagged sheds by reason, untagged by the
/// backpressure codes kUnavailable/kResourceExhausted), wait the hinted
/// — or exponentially backed-off — interval and resubmit, up to
/// backoff.max_attempts total attempts.  Any other failure, or
/// exhausting the attempts, returns the last status unchanged.
[[nodiscard]] util::Expected<RunHandle> submit_with_retry(
    Runtime& runtime, RunSpec spec, RetryBackoff backoff = {});

/// Batched submit with retry: submit the whole batch, then on each
/// backoff round resubmit ONLY the slots that came back as retryable
/// sheds (rate limit, queue full, journal saturation, ...).  Slots that
/// were admitted, or that failed non-retryably, are never resubmitted.
/// The wait for a round is the largest retry_after_ms hint among the
/// shed slots, falling back to the exponential schedule.  Results stay
/// index-aligned with `specs`.
[[nodiscard]] std::vector<util::Expected<RunHandle>> submit_batch_with_retry(
    Runtime& runtime, std::vector<RunSpec> specs, RetryBackoff backoff = {});

class Workbench {
 public:
  /// Builds simulator, cluster (capacity_spread > 0 = heterogeneous), and
  /// — when spec.with_background_load — a started load generator.  The
  /// monitor is constructed but not sampling until start_monitoring().
  explicit Workbench(
      RunSpec spec,
      policy::PolicyBase policies = policy::standard_policy_base());

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] grid::Cluster& cluster() { return cluster_; }
  /// Mutable until environment() is first called: rules added here are in
  /// the knowledge base the ADM consults.
  [[nodiscard]] policy::PolicyBase& policies() { return policies_; }
  [[nodiscard]] grid::FailureInjector& failures() { return failures_; }
  [[nodiscard]] monitor::ResourceMonitor& monitor() { return monitor_; }
  [[nodiscard]] const RunSpec& spec() const { return spec_; }

  /// Begin periodic NWS sampling (idempotent).
  void start_monitoring();

  /// The agent control network: MCS template + ADM + one component agent
  /// per processor, built on first call (so policy rules and tweaks made
  /// beforehand are in effect).  The caller wires sensors/actuators and
  /// calls .start() — exactly the surface the steering examples need.
  [[nodiscard]] agents::Environment& environment();

  /// Advance simulated time by `seconds`.
  void advance(double seconds);

 private:
  RunSpec spec_;
  sim::Simulator simulator_;
  grid::Cluster cluster_;
  std::unique_ptr<grid::LoadGenerator> loadgen_;
  grid::FailureInjector failures_;
  monitor::ResourceMonitor monitor_;
  bool monitoring_ = false;
  policy::PolicyBase policies_;
  std::unique_ptr<agents::Mcs> mcs_;
  std::unique_ptr<agents::Environment> environment_;
};

}  // namespace pragma::service
