// The example networked system of Section 3.2 / Table 1.
//
// "This example system consists of two Computers (PC1 and PC2) that are
//  connected through an Ethernet switch.  PC1 performs a matrix
//  multiplication and upon completion sends the result to PC2 through the
//  Switch.  PC2 performs the same matrix multiplication function and returns
//  the result back to PC1."
//
// We model each component's ground-truth behavior (matmul compute cost on
// the PCs, store-and-forward transfer at the switch), add measurement noise,
// fit a PF per component from training measurements (least squares over the
// paper's poly+exp form, or the paper's neural-network method), compose the
// end-to-end PF by summation (Eq. 2), and validate at held-out data sizes —
// exactly the Table 1 procedure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pragma/perf/pf.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::perf {

struct NetSysConfig {
  /// Effective matmul rates of the two PCs in Gflop/s.  Deliberately slow
  /// (interpreted/instrumented late-90s workstation code) so that the
  /// end-to-end delays land in the paper's 8e-4 .. 2e-3 s range.
  double pc1_gflops = 0.006;
  double pc2_gflops = 0.005;
  /// Per-invocation software overhead on each PC, seconds.
  double pc_overhead_s = 2.8e-4;
  /// Switch: per-message latency and bandwidth.
  double switch_latency_s = 6e-5;
  double switch_bandwidth_mbps = 100.0;
  /// Relative measurement noise (std dev).
  double noise = 0.035;
  std::uint64_t seed = 2002;
};

/// Simulated measurements of the two-PC-plus-switch system.
class NetworkedSystem {
 public:
  explicit NetworkedSystem(NetSysConfig config);

  /// One noisy measurement of each component's task time for data size D
  /// (bytes).  The matrices multiplied are n×n with n = sqrt(D / 8)
  /// (8-byte elements), so compute cost scales as 2 n^3 flops.
  [[nodiscard]] double measure_pc1(double data_bytes);
  [[nodiscard]] double measure_pc2(double data_bytes);
  [[nodiscard]] double measure_switch(double data_bytes);

  /// One noisy end-to-end measurement: PC1 + switch + PC2 (the application's
  /// response for one half cycle, which is what Table 1 tabulates).
  [[nodiscard]] double measure_end_to_end(double data_bytes);

  /// Noise-free ground truth (for tests).
  [[nodiscard]] double true_pc1(double data_bytes) const;
  [[nodiscard]] double true_pc2(double data_bytes) const;
  [[nodiscard]] double true_switch(double data_bytes) const;
  [[nodiscard]] double true_end_to_end(double data_bytes) const;

  [[nodiscard]] const NetSysConfig& config() const { return config_; }

 private:
  [[nodiscard]] double noisy(double value);
  NetSysConfig config_;
  util::Rng rng_;
};

/// How component PFs are obtained from measurements.
enum class FitMethod { kLeastSquares, kNeuralNetwork };

[[nodiscard]] std::string to_string(FitMethod method);

/// One row of the reproduced Table 1.
struct Table1Row {
  double data_bytes = 0.0;
  double predicted_s = 0.0;  // PF_total(D)
  double measured_s = 0.0;   // fresh end-to-end measurement
  double percent_error = 0.0;
};

struct Table1Result {
  FitMethod method = FitMethod::kLeastSquares;
  std::vector<Table1Row> rows;
  /// The composed end-to-end PF (kept for inspection).
  std::unique_ptr<PerfFunction> end_to_end_pf;
};

struct Table1Options {
  FitMethod method = FitMethod::kLeastSquares;
  /// Training data sizes; defaults cover 100..1200 bytes.
  std::vector<double> training_sizes;
  /// Repeated measurements per training size (averaged).
  int repetitions = 3;
  /// Validation sizes; defaults to the paper's {200, 400, 600, 800, 1000}.
  std::vector<double> validation_sizes;
  /// Measurements averaged per validation point.
  int validation_repetitions = 3;
};

/// Run the full Table 1 procedure: measure → fit per-component PFs →
/// compose → validate.
[[nodiscard]] Table1Result run_table1_experiment(
    const NetSysConfig& config = {}, Table1Options options = {});

}  // namespace pragma::perf
