// Application-level Performance Functions: projecting execution time
// across system configurations (Section 3.2, step 3).
//
// "The final step is to compose the component PFs to generate an overall
//  PF that can be used during runtime to estimate and project the
//  operation and performance of the application for any system and network
//  state."
//
// For a bulk-synchronous SAMR step the natural composition over the
// processor-count attribute p is
//
//     T(p) = t_serial + t_parallel / p + t_surface * p^{-2/3} + t_sync * log2(p)
//
// (perfectly parallel work, surface-dominated ghost exchange, and
// tree-structured synchronization).  The coefficients are obtained by
// linear least squares from a handful of measured (p, step time) samples;
// the fitted PF then predicts unseen processor counts and recommends a
// configuration — the decision Pragma's proactive management needs when
// "selecting the appropriate number, type, and configuration of the
// computing elements".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pragma::perf {

struct AppSample {
  std::size_t procs = 1;
  double step_time_s = 0.0;
};

class ScalabilityPf {
 public:
  /// Fit from measured samples (needs >= 4 distinct processor counts).
  [[nodiscard]] static ScalabilityPf fit(std::span<const AppSample> samples);

  /// Predicted step time at `procs`.
  [[nodiscard]] double predict(std::size_t procs) const;

  /// Predicted speedup over the smallest measured configuration.
  [[nodiscard]] double speedup(std::size_t procs,
                               std::size_t baseline_procs) const;

  /// Predicted parallel efficiency relative to `baseline_procs`.
  [[nodiscard]] double efficiency(std::size_t procs,
                                  std::size_t baseline_procs) const;

  /// The smallest processor count in [1, max_procs] whose predicted step
  /// time is within `slack` (fractionally) of the best predicted time —
  /// i.e. the cheapest configuration that is nearly as fast as the best.
  [[nodiscard]] std::size_t recommend_processors(std::size_t max_procs,
                                                 double slack = 0.05) const;

  /// Fitted coefficients {serial, parallel, surface, sync}.
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }

  /// Root-mean-square relative error over the training samples.
  [[nodiscard]] double training_error() const { return training_error_; }

 private:
  std::vector<double> coefficients_{0.0, 0.0, 0.0, 0.0};
  double training_error_ = 0.0;
};

}  // namespace pragma::perf
