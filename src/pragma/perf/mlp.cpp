#include "pragma/perf/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace pragma::perf {

Mlp::Mlp(std::size_t inputs, const MlpConfig& config)
    : inputs_(inputs), config_(config) {
  if (inputs == 0) throw std::invalid_argument("Mlp: zero inputs");
  util::Rng rng(config.seed);
  std::size_t prev = inputs;
  for (std::size_t width : config.hidden) {
    Layer layer;
    layer.in = prev;
    layer.out = width;
    layer.weights.resize(width * prev);
    layer.biases.assign(width, 0.0);
    layer.w_vel.assign(width * prev, 0.0);
    layer.b_vel.assign(width, 0.0);
    // Xavier/Glorot initialization.
    const double scale = std::sqrt(2.0 / static_cast<double>(prev + width));
    for (double& w : layer.weights) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
    prev = width;
  }
  Layer out;
  out.in = prev;
  out.out = 1;
  out.weights.resize(prev);
  out.biases.assign(1, 0.0);
  out.w_vel.assign(prev, 0.0);
  out.b_vel.assign(1, 0.0);
  const double scale = std::sqrt(2.0 / static_cast<double>(prev + 1));
  for (double& w : out.weights) w = rng.normal(0.0, scale);
  layers_.push_back(std::move(out));

  x_mean_.assign(inputs, 0.0);
  x_std_.assign(inputs, 1.0);
}

std::vector<double> Mlp::forward(
    std::vector<std::vector<double>>& activations,
    const std::vector<double>& input) const {
  activations.clear();
  activations.push_back(input);
  std::vector<double> current = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.biases[o];
      for (std::size_t i = 0; i < layer.in; ++i)
        z += layer.weights[o * layer.in + i] * current[i];
      // Hidden layers use tanh; the final layer is linear.
      next[o] = (l + 1 == layers_.size()) ? z : std::tanh(z);
    }
    activations.push_back(next);
    current = std::move(next);
  }
  return current;
}

void Mlp::backward(std::vector<std::vector<double>>& activations,
                   double output_error) {
  // delta for the linear output unit.
  std::vector<double> delta{output_error};
  for (std::size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const std::vector<double>& input = activations[l];
    std::vector<double> prev_delta(layer.in, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      for (std::size_t i = 0; i < layer.in; ++i) {
        prev_delta[i] += layer.weights[o * layer.in + i] * delta[o];
        const double grad = delta[o] * input[i] +
                            config_.weight_decay *
                                layer.weights[o * layer.in + i];
        double& vel = layer.w_vel[o * layer.in + i];
        vel = config_.momentum * vel - config_.learning_rate * grad;
        layer.weights[o * layer.in + i] += vel;
      }
      double& bvel = layer.b_vel[o];
      bvel = config_.momentum * bvel - config_.learning_rate * delta[o];
      layer.biases[o] += bvel;
    }
    if (l == 0) break;
    // Apply tanh' of the previous layer's activation.
    const std::vector<double>& act = activations[l];
    (void)act;
    for (std::size_t i = 0; i < layer.in; ++i) {
      const double a = activations[l][i];
      prev_delta[i] *= (1.0 - a * a);
    }
    delta = std::move(prev_delta);
  }
}

double Mlp::train(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("Mlp::train: bad sample set");
  for (const auto& row : x)
    if (row.size() != inputs_)
      throw std::invalid_argument("Mlp::train: input dimension mismatch");

  // Standardize inputs and targets.
  const auto n = static_cast<double>(x.size());
  x_mean_.assign(inputs_, 0.0);
  x_std_.assign(inputs_, 0.0);
  for (const auto& row : x)
    for (std::size_t d = 0; d < inputs_; ++d) x_mean_[d] += row[d];
  for (double& m : x_mean_) m /= n;
  for (const auto& row : x)
    for (std::size_t d = 0; d < inputs_; ++d)
      x_std_[d] += (row[d] - x_mean_[d]) * (row[d] - x_mean_[d]);
  for (double& s : x_std_) s = std::max(std::sqrt(s / n), 1e-12);

  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= n;
  y_std_ = 0.0;
  for (double v : y) y_std_ += (v - y_mean_) * (v - y_mean_);
  y_std_ = std::max(std::sqrt(y_std_ / n), 1e-12);

  std::vector<std::vector<double>> xs(x.size(),
                                      std::vector<double>(inputs_));
  std::vector<double> ys(y.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    for (std::size_t d = 0; d < inputs_; ++d)
      xs[r][d] = (x[r][d] - x_mean_[d]) / x_std_[d];
    ys[r] = (y[r] - y_mean_) / y_std_;
  }

  util::Rng rng(config_.seed ^ 0xabcdefULL);
  std::vector<std::size_t> order(x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<std::vector<double>> activations;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle for SGD.
    for (std::size_t i = order.size(); i-- > 1;) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }
    for (std::size_t idx : order) {
      const std::vector<double> out = forward(activations, xs[idx]);
      backward(activations, out[0] - ys[idx]);
    }
  }

  double rss = 0.0;
  for (std::size_t r = 0; r < xs.size(); ++r) {
    const std::vector<double> out = forward(activations, xs[r]);
    const double err = (out[0] - ys[r]) * y_std_;
    rss += err * err;
  }
  return std::sqrt(rss / n);
}

double Mlp::predict(const std::vector<double>& x) const {
  if (x.size() != inputs_)
    throw std::invalid_argument("Mlp::predict: input dimension mismatch");
  std::vector<double> xn(inputs_);
  for (std::size_t d = 0; d < inputs_; ++d)
    xn[d] = (x[d] - x_mean_[d]) / x_std_[d];
  std::vector<std::vector<double>> activations;
  const std::vector<double> out = forward(activations, xn);
  return out[0] * y_std_ + y_mean_;
}

std::unique_ptr<PerfFunction> Mlp::as_pf(const std::string& name) const {
  if (inputs_ != 1)
    throw std::logic_error("Mlp::as_pf: only 1-D networks wrap as PFs");
  // Copy the network into the closure so the PF owns its parameters.
  Mlp copy = *this;
  return std::make_unique<CallablePf>(
      [copy](double x) { return copy.predict1(x); }, name);
}

std::unique_ptr<PerfFunction> fit_mlp_pf(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         const MlpConfig& config,
                                         const std::string& name) {
  Mlp mlp(1, config);
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (double v : x) rows.push_back({v});
  mlp.train(rows, y);
  return mlp.as_pf(name);
}

}  // namespace pragma::perf
