// Performance Functions (Section 3.2).
//
// A Performance Function (PF) "describes the behavior of a system component,
// subsystem or compound system in terms of changes in one or more of its
// attributes".  The paper's Eq. 1 gives each component's PF the form
//
//     PF_i(D) = sum_{j=0..m} a_j D^j  +  b * exp(c * D)
//
// over the data-size attribute D, and Eq. 2 composes the end-to-end PF of a
// pipeline as the sum of the component PFs (analogous to composing block
// transfer functions in control theory).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pragma::perf {

/// A scalar performance function over one attribute (e.g. data size).
class PerfFunction {
 public:
  virtual ~PerfFunction() = default;
  /// Evaluate the predicted metric (e.g. delay in seconds) at attribute x.
  [[nodiscard]] virtual double evaluate(double x) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<PerfFunction> clone() const = 0;
};

/// The paper's PF form: polynomial plus an exponential term.
class PolyExpPf final : public PerfFunction {
 public:
  /// poly[j] is the coefficient of x^j; the exponential term is
  /// exp_scale * exp(exp_rate * x) (pass exp_scale = 0 for pure polynomial).
  PolyExpPf(std::vector<double> poly, double exp_scale, double exp_rate,
            std::string name = "poly_exp");

  [[nodiscard]] double evaluate(double x) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<PerfFunction> clone() const override;

  [[nodiscard]] const std::vector<double>& poly() const { return poly_; }
  [[nodiscard]] double exp_scale() const { return exp_scale_; }
  [[nodiscard]] double exp_rate() const { return exp_rate_; }

 private:
  std::vector<double> poly_;
  double exp_scale_;
  double exp_rate_;
  std::string name_;
};

/// End-to-end PF: the sum of component PFs (Eq. 2).
class CompositePf final : public PerfFunction {
 public:
  CompositePf() = default;
  explicit CompositePf(std::string name) : name_(std::move(name)) {}

  void add(std::unique_ptr<PerfFunction> component);
  [[nodiscard]] std::size_t components() const { return components_.size(); }
  [[nodiscard]] const PerfFunction& component(std::size_t i) const {
    return *components_.at(i);
  }

  [[nodiscard]] double evaluate(double x) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<PerfFunction> clone() const override;

 private:
  std::vector<std::unique_ptr<PerfFunction>> components_;
  std::string name_ = "composite";
};

/// A PF backed by an arbitrary callable (used to wrap fitted MLPs).
class CallablePf final : public PerfFunction {
 public:
  using Fn = std::function<double(double)>;
  CallablePf(Fn fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}
  [[nodiscard]] double evaluate(double x) const override { return fn_(x); }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<PerfFunction> clone() const override {
    return std::make_unique<CallablePf>(fn_, name_);
  }

 private:
  Fn fn_;
  std::string name_;
};

/// Relative error |predicted - measured| / measured of a PF at sample
/// points; returns the per-point errors.
[[nodiscard]] std::vector<double> relative_errors(
    const PerfFunction& pf, const std::vector<double>& xs,
    const std::vector<double>& measured);

}  // namespace pragma::perf
