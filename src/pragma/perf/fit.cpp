#include "pragma/perf/fit.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "pragma/perf/linalg.hpp"

namespace pragma::perf {

namespace {

/// Build the design matrix for the polynomial basis (and optionally an
/// exp(rate * x) column appended last).
Matrix design_matrix(const std::vector<double>& x, int degree,
                     bool with_exp, double rate) {
  const std::size_t n = x.size();
  const std::size_t cols =
      static_cast<std::size_t>(degree + 1) + (with_exp ? 1 : 0);
  Matrix a(n, cols);
  for (std::size_t r = 0; r < n; ++r) {
    double power = 1.0;
    for (int j = 0; j <= degree; ++j) {
      a(r, static_cast<std::size_t>(j)) = power;
      power *= x[r];
    }
    if (with_exp) a(r, cols - 1) = std::exp(rate * x[r]);
  }
  return a;
}

}  // namespace

std::unique_ptr<PolyExpPf> fit_poly_exp(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        const PolyExpFitOptions& options) {
  if (x.size() != y.size())
    throw std::invalid_argument("fit_poly_exp: size mismatch");
  const std::size_t min_samples =
      static_cast<std::size_t>(options.degree + 1) +
      (options.with_exponential ? 2 : 0);
  if (x.size() < min_samples)
    throw std::invalid_argument("fit_poly_exp: too few samples");

  // Normalize x to [0, 1] for conditioning; fold the scale back into the
  // returned coefficients.
  double xmax = 0.0;
  for (double v : x) xmax = std::max(xmax, std::abs(v));
  if (xmax == 0.0) xmax = 1.0;
  std::vector<double> xn(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xn[i] = x[i] / xmax;

  auto solve_linear = [&](bool with_exp, double rate,
                          std::vector<double>& coeffs) {
    const Matrix a = design_matrix(xn, options.degree, with_exp, rate);
    coeffs = least_squares(a, y, options.ridge);
  };

  std::vector<double> best_coeffs;
  double best_rate = 0.0;
  double best_rss = std::numeric_limits<double>::infinity();
  bool best_with_exp = false;

  {
    std::vector<double> coeffs;
    solve_linear(false, 0.0, coeffs);
    Matrix a = design_matrix(xn, options.degree, false, 0.0);
    const std::vector<double> yhat = a.multiply(coeffs);
    double rss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      rss += (yhat[i] - y[i]) * (yhat[i] - y[i]);
    best_coeffs = coeffs;
    best_rss = rss;
  }

  if (options.with_exponential) {
    for (int s = 0; s < options.exp_rate_steps; ++s) {
      const double rate =
          options.exp_rate_min +
          (options.exp_rate_max - options.exp_rate_min) * s /
              std::max(1, options.exp_rate_steps - 1);
      if (std::abs(rate) < 1e-9) continue;  // degenerate: constant column
      std::vector<double> coeffs;
      try {
        solve_linear(true, rate, coeffs);
      } catch (const std::runtime_error&) {
        continue;  // singular design for this rate
      }
      const Matrix a = design_matrix(xn, options.degree, true, rate);
      const std::vector<double> yhat = a.multiply(coeffs);
      double rss = 0.0;
      for (std::size_t i = 0; i < y.size(); ++i)
        rss += (yhat[i] - y[i]) * (yhat[i] - y[i]);
      if (rss < best_rss) {
        best_rss = rss;
        best_coeffs = coeffs;
        best_rate = rate;
        best_with_exp = true;
      }
    }
  }

  // Undo the x normalization: coefficient of x^j becomes a_j / xmax^j and
  // the exponential rate becomes rate / xmax.
  std::vector<double> poly(static_cast<std::size_t>(options.degree) + 1);
  double scale = 1.0;
  for (int j = 0; j <= options.degree; ++j) {
    poly[static_cast<std::size_t>(j)] =
        best_coeffs[static_cast<std::size_t>(j)] / scale;
    scale *= xmax;
  }
  double exp_scale = 0.0;
  double exp_rate = 0.0;
  if (best_with_exp) {
    exp_scale = best_coeffs.back();
    exp_rate = best_rate / xmax;
  }
  return std::make_unique<PolyExpPf>(std::move(poly), exp_scale, exp_rate,
                                     "fitted_poly_exp");
}

double residual_ss(const PerfFunction& pf, const std::vector<double>& x,
                   const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("residual_ss: size mismatch");
  double rss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = pf.evaluate(x[i]) - y[i];
    rss += d * d;
  }
  return rss;
}

}  // namespace pragma::perf
