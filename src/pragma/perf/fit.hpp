// Fitting Performance Functions from measurements (Section 3.2, step 2:
// "use experimental and analytical techniques to obtain the PF").
//
// Two fitters are provided:
//  * PolyExpFitter — fits the paper's poly+exp form.  The polynomial part is
//    linear in its coefficients and solved by least squares; the exponential
//    rate c is nonlinear and found by a coarse-to-fine scan (for each
//    candidate c, the scale b joins the linear solve).
//  * MlpFitter (mlp.hpp) — the paper's stated method ("feed these
//    measurements to a neural network to obtain the corresponding PF").
#pragma once

#include <memory>
#include <vector>

#include "pragma/perf/pf.hpp"

namespace pragma::perf {

struct PolyExpFitOptions {
  /// Polynomial degree m (coefficients a_0..a_m).
  int degree = 2;
  /// Include the b*exp(c x) term.
  bool with_exponential = false;
  /// Candidate range scanned for the exponential rate c (per unit of x,
  /// applied after normalizing x to [0,1] internally).
  double exp_rate_min = -8.0;
  double exp_rate_max = 8.0;
  int exp_rate_steps = 65;
  /// Ridge damping for the linear solve.
  double ridge = 1e-12;
};

/// Fit a PolyExpPf to (x, y) samples.  Throws on insufficient samples.
[[nodiscard]] std::unique_ptr<PolyExpPf> fit_poly_exp(
    const std::vector<double>& x, const std::vector<double>& y,
    const PolyExpFitOptions& options = {});

/// Residual sum of squares of a PF over samples.
[[nodiscard]] double residual_ss(const PerfFunction& pf,
                                 const std::vector<double>& x,
                                 const std::vector<double>& y);

}  // namespace pragma::perf
