#include "pragma/perf/pf.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

namespace pragma::perf {

PolyExpPf::PolyExpPf(std::vector<double> poly, double exp_scale,
                     double exp_rate, std::string name)
    : poly_(std::move(poly)),
      exp_scale_(exp_scale),
      exp_rate_(exp_rate),
      name_(std::move(name)) {}

double PolyExpPf::evaluate(double x) const {
  // Horner evaluation of the polynomial part.
  double value = 0.0;
  for (std::size_t j = poly_.size(); j-- > 0;) value = value * x + poly_[j];
  if (exp_scale_ != 0.0) value += exp_scale_ * std::exp(exp_rate_ * x);
  return value;
}

std::unique_ptr<PerfFunction> PolyExpPf::clone() const {
  return std::make_unique<PolyExpPf>(poly_, exp_scale_, exp_rate_, name_);
}

void CompositePf::add(std::unique_ptr<PerfFunction> component) {
  if (!component) throw std::invalid_argument("CompositePf::add: null");
  components_.push_back(std::move(component));
}

double CompositePf::evaluate(double x) const {
  double total = 0.0;
  for (const auto& component : components_) total += component->evaluate(x);
  return total;
}

std::unique_ptr<PerfFunction> CompositePf::clone() const {
  auto copy = std::make_unique<CompositePf>(name_);
  for (const auto& component : components_) copy->add(component->clone());
  return copy;
}

std::vector<double> relative_errors(const PerfFunction& pf,
                                    const std::vector<double>& xs,
                                    const std::vector<double>& measured) {
  if (xs.size() != measured.size())
    throw std::invalid_argument("relative_errors: size mismatch");
  std::vector<double> errors;
  errors.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double predicted = pf.evaluate(xs[i]);
    const double denom = measured[i] == 0.0 ? 1.0 : std::abs(measured[i]);
    errors.push_back(std::abs(predicted - measured[i]) / denom);
  }
  return errors;
}

}  // namespace pragma::perf
