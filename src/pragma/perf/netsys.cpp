#include "pragma/perf/netsys.hpp"

#include <cmath>
#include <stdexcept>

#include "pragma/perf/fit.hpp"
#include "pragma/perf/mlp.hpp"
#include "pragma/util/stats.hpp"

namespace pragma::perf {

NetworkedSystem::NetworkedSystem(NetSysConfig config)
    : config_(config), rng_(config.seed) {}

namespace {
/// Flops for multiplying the n×n matrices encoded in `data_bytes` of
/// 8-byte elements: n = sqrt(D/8), cost = 2 n^3.
double matmul_flops(double data_bytes) {
  const double n = std::sqrt(data_bytes / 8.0);
  return 2.0 * n * n * n;
}
}  // namespace

double NetworkedSystem::true_pc1(double data_bytes) const {
  return config_.pc_overhead_s +
         matmul_flops(data_bytes) / (config_.pc1_gflops * 1e9);
}

double NetworkedSystem::true_pc2(double data_bytes) const {
  return config_.pc_overhead_s +
         matmul_flops(data_bytes) / (config_.pc2_gflops * 1e9);
}

double NetworkedSystem::true_switch(double data_bytes) const {
  const double rate = config_.switch_bandwidth_mbps * 1e6 / 8.0;
  return config_.switch_latency_s + data_bytes / rate;
}

double NetworkedSystem::true_end_to_end(double data_bytes) const {
  return true_pc1(data_bytes) + true_switch(data_bytes) +
         true_pc2(data_bytes);
}

double NetworkedSystem::noisy(double value) {
  return std::max(0.0, value * (1.0 + rng_.normal(0.0, config_.noise)));
}

double NetworkedSystem::measure_pc1(double data_bytes) {
  return noisy(true_pc1(data_bytes));
}
double NetworkedSystem::measure_pc2(double data_bytes) {
  return noisy(true_pc2(data_bytes));
}
double NetworkedSystem::measure_switch(double data_bytes) {
  return noisy(true_switch(data_bytes));
}
double NetworkedSystem::measure_end_to_end(double data_bytes) {
  return noisy(true_end_to_end(data_bytes));
}

std::string to_string(FitMethod method) {
  switch (method) {
    case FitMethod::kLeastSquares:
      return "least_squares";
    case FitMethod::kNeuralNetwork:
      return "neural_network";
  }
  return "?";
}

Table1Result run_table1_experiment(const NetSysConfig& config,
                                   Table1Options options) {
  if (options.training_sizes.empty())
    for (double d = 100.0; d <= 1200.0; d += 50.0)
      options.training_sizes.push_back(d);
  if (options.validation_sizes.empty())
    options.validation_sizes = {200.0, 400.0, 600.0, 800.0, 1000.0};
  if (options.repetitions < 1 || options.validation_repetitions < 1)
    throw std::invalid_argument("run_table1_experiment: repetitions >= 1");

  NetworkedSystem system(config);

  // Step 1+2: measure each component at the training sizes and fit a PF.
  const std::size_t nt = options.training_sizes.size();
  std::vector<double> pc1(nt, 0.0), pc2(nt, 0.0), sw(nt, 0.0);
  for (std::size_t i = 0; i < nt; ++i) {
    const double d = options.training_sizes[i];
    util::Accumulator a1, a2, as;
    for (int r = 0; r < options.repetitions; ++r) {
      a1.add(system.measure_pc1(d));
      a2.add(system.measure_pc2(d));
      as.add(system.measure_switch(d));
    }
    pc1[i] = a1.mean();
    pc2[i] = a2.mean();
    sw[i] = as.mean();
  }

  auto fit_component = [&](const std::vector<double>& y,
                           const std::string& name)
      -> std::unique_ptr<PerfFunction> {
    if (options.method == FitMethod::kNeuralNetwork) {
      MlpConfig mlp;
      mlp.hidden = {10, 10};
      mlp.epochs = 2500;
      mlp.learning_rate = 0.01;
      return fit_mlp_pf(options.training_sizes, y, mlp, name);
    }
    PolyExpFitOptions fit;
    fit.degree = 2;
    fit.with_exponential = true;
    auto pf = fit_poly_exp(options.training_sizes, y, fit);
    return std::make_unique<PolyExpPf>(pf->poly(), pf->exp_scale(),
                                       pf->exp_rate(), name);
  };

  // Step 3: compose the end-to-end PF (Eq. 2).
  auto composite = std::make_unique<CompositePf>("end_to_end");
  composite->add(fit_component(pc1, "PF_pc1"));
  composite->add(fit_component(sw, "PF_switch"));
  composite->add(fit_component(pc2, "PF_pc2"));

  // Validate at the paper's data sizes against fresh measurements.
  Table1Result result;
  result.method = options.method;
  for (double d : options.validation_sizes) {
    util::Accumulator measured;
    for (int r = 0; r < options.validation_repetitions; ++r)
      measured.add(system.measure_end_to_end(d));
    Table1Row row;
    row.data_bytes = d;
    row.predicted_s = composite->evaluate(d);
    row.measured_s = measured.mean();
    row.percent_error =
        100.0 * std::abs(row.predicted_s - row.measured_s) / row.measured_s;
    result.rows.push_back(row);
  }
  result.end_to_end_pf = std::move(composite);
  return result;
}

}  // namespace pragma::perf
