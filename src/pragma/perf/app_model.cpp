#include "pragma/perf/app_model.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include "pragma/perf/linalg.hpp"

namespace pragma::perf {

namespace {
std::vector<double> basis(double p) {
  return {1.0, 1.0 / p, std::pow(p, -2.0 / 3.0), std::log2(p)};
}
}  // namespace

ScalabilityPf ScalabilityPf::fit(std::span<const AppSample> samples) {
  std::set<std::size_t> distinct;
  for (const AppSample& sample : samples) {
    if (sample.procs == 0)
      throw std::invalid_argument("ScalabilityPf::fit: procs == 0");
    distinct.insert(sample.procs);
  }
  if (distinct.size() < 4)
    throw std::invalid_argument(
        "ScalabilityPf::fit: need >= 4 distinct processor counts");

  Matrix a(samples.size(), 4);
  std::vector<double> b(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const std::vector<double> row =
        basis(static_cast<double>(samples[r].procs));
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = row[c];
    b[r] = samples[r].step_time_s;
  }

  ScalabilityPf pf;
  pf.coefficients_ = least_squares(a, b, 1e-12);

  double rel = 0.0;
  for (const AppSample& sample : samples) {
    const double predicted = pf.predict(sample.procs);
    const double d = sample.step_time_s > 0.0
                         ? (predicted - sample.step_time_s) /
                               sample.step_time_s
                         : 0.0;
    rel += d * d;
  }
  pf.training_error_ =
      std::sqrt(rel / static_cast<double>(samples.size()));
  return pf;
}

double ScalabilityPf::predict(std::size_t procs) const {
  if (procs == 0) throw std::invalid_argument("predict: procs == 0");
  const std::vector<double> row = basis(static_cast<double>(procs));
  double value = 0.0;
  for (std::size_t c = 0; c < 4; ++c) value += coefficients_[c] * row[c];
  return value;
}

double ScalabilityPf::speedup(std::size_t procs,
                              std::size_t baseline_procs) const {
  const double base = predict(baseline_procs);
  const double now = predict(procs);
  return now > 0.0 ? base / now : 0.0;
}

double ScalabilityPf::efficiency(std::size_t procs,
                                 std::size_t baseline_procs) const {
  if (procs == 0) return 0.0;
  return speedup(procs, baseline_procs) *
         static_cast<double>(baseline_procs) / static_cast<double>(procs);
}

std::size_t ScalabilityPf::recommend_processors(std::size_t max_procs,
                                                double slack) const {
  if (max_procs == 0)
    throw std::invalid_argument("recommend_processors: max_procs == 0");
  double best = predict(1);
  for (std::size_t p = 2; p <= max_procs; ++p)
    best = std::min(best, predict(p));
  for (std::size_t p = 1; p <= max_procs; ++p)
    if (predict(p) <= best * (1.0 + slack)) return p;
  return max_procs;
}

}  // namespace pragma::perf
