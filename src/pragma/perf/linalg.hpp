// Small dense linear algebra used by the least-squares PF fitter and the
// MLP trainer.  Row-major matrices sized for regression problems (tens of
// rows/columns), not for HPC kernels.
#pragma once

#include <cstddef>
#include <vector>

namespace pragma::perf {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws std::runtime_error on a (numerically) singular system.
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

/// Solve the linear least-squares problem min ||A x - b||_2 via the normal
/// equations with Tikhonov damping `ridge` (0 for plain LS).
[[nodiscard]] std::vector<double> least_squares(const Matrix& a,
                                                const std::vector<double>& b,
                                                double ridge = 0.0);

}  // namespace pragma::perf
