// Small multilayer perceptron, trained from scratch with SGD.
//
// The paper obtains component PFs by feeding task-processing-time
// measurements "to a neural network".  This is that network: a fully
// connected tanh MLP regressor with input/output standardization, suitable
// for the one-dimensional data-size -> delay curves of Table 1 (but written
// generically for n-dimensional inputs).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "pragma/perf/pf.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::perf {

struct MlpConfig {
  std::vector<std::size_t> hidden = {8, 8};
  double learning_rate = 0.02;
  double momentum = 0.9;
  std::size_t epochs = 3000;
  std::uint64_t seed = 42;
  /// L2 weight decay.
  double weight_decay = 1e-5;
};

/// Fully connected tanh regressor with a linear output unit.
class Mlp {
 public:
  Mlp(std::size_t inputs, const MlpConfig& config);

  /// Train on rows of `x` (size n×inputs, flattened row-major) against
  /// targets `y` (size n).  Standardizes inputs/targets internally.
  /// Returns the final training RMSE (in original target units).
  double train(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y);

  /// Predict a single sample.
  [[nodiscard]] double predict(const std::vector<double>& x) const;

  /// Convenience for 1-D curves.
  [[nodiscard]] double predict1(double x) const { return predict({x}); }

  /// Wrap a trained 1-D network as a PerfFunction.
  [[nodiscard]] std::unique_ptr<PerfFunction> as_pf(
      const std::string& name) const;

  [[nodiscard]] std::size_t input_dim() const { return inputs_; }

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> weights;   // out × in
    std::vector<double> biases;    // out
    std::vector<double> w_vel;     // momentum buffers
    std::vector<double> b_vel;
  };

  [[nodiscard]] std::vector<double> forward(
      std::vector<std::vector<double>>& activations,
      const std::vector<double>& input) const;
  void backward(std::vector<std::vector<double>>& activations,
                double output_error);

  std::size_t inputs_;
  MlpConfig config_;
  std::vector<Layer> layers_;
  // Standardization parameters learned in train().
  std::vector<double> x_mean_;
  std::vector<double> x_std_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

/// One-call helper: train an MLP on a 1-D curve and return it as a PF.
[[nodiscard]] std::unique_ptr<PerfFunction> fit_mlp_pf(
    const std::vector<double>& x, const std::vector<double>& y,
    const MlpConfig& config = {}, const std::string& name = "mlp_pf");

}  // namespace pragma::perf
