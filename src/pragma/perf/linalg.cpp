#include "pragma/perf/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace pragma::perf {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) += a * rhs(k, c);
    }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (cols_ != v.size())
    throw std::invalid_argument("Matrix::multiply(vec): shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve: expected square system");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    if (std::abs(a(pivot, col)) < 1e-14)
      throw std::runtime_error("solve: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double total = b[r];
    for (std::size_t c = r + 1; c < n; ++c) total -= a(r, c) * x[c];
    x[r] = total / a(r, r);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b,
                                  double ridge) {
  const Matrix at = a.transpose();
  Matrix ata = at.multiply(a);
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  const std::vector<double> atb = at.multiply(b);
  return solve(std::move(ata), atb);
}

}  // namespace pragma::perf
