// Built-in adaptation policies: the Table 2 octant -> partitioner map plus
// the system-sensitive rules sketched in Sections 3.5 and 4.7.
#pragma once

#include "pragma/policy/policy.hpp"

namespace pragma::policy {

/// Install one policy per octant ("octant" attribute -> "partitioner"
/// action), following Table 2.
void install_octant_policies(PolicyBase& base);

/// Install the system-level example rules from the paper: load-threshold
/// repartitioning, bandwidth-drop communication adaptation, low-memory
/// granularity reduction.
void install_system_policies(PolicyBase& base);

/// A policy base pre-loaded with both sets.
[[nodiscard]] PolicyBase standard_policy_base();

}  // namespace pragma::policy
