#include "pragma/policy/builtin.hpp"

#include "pragma/octant/octant.hpp"
#include "pragma/policy/dsl.hpp"

namespace pragma::policy {

void install_octant_policies(PolicyBase& base) {
  using octant::Octant;
  for (int i = 1; i <= 8; ++i) {
    const auto oct = static_cast<Octant>(i);
    const std::string name = octant::to_string(oct);
    Policy policy;
    policy.name = "octant_" + name;
    policy.conditions.push_back(
        Condition{"octant", Op::kEq, Value{name}, 0.0});
    policy.action["partitioner"] = Value{octant::select_partitioner(oct)};
    // Secondary recommendation, when Table 2 lists one.
    const auto& recommended = octant::recommended_partitioners(oct);
    if (recommended.size() > 1)
      policy.action["fallback_partitioner"] = Value{recommended[1]};
    base.add(std::move(policy));
  }
}

void install_system_policies(PolicyBase& base) {
  // The example rules the paper sketches in Sections 3.5 and 4.7, expressed
  // in the rule DSL, with descriptive names for the ADM decision log.
  struct NamedRule {
    const char* name;
    const char* rule;
  };
  const NamedRule kRules[] = {
      // "a local agent is used to generate events when the load reaches a
      //  certain threshold - this event can then trigger repartitioning"
      {"load_threshold_repartition",
       "if load >= 0.8 tol 0.05 then action = repartition priority 2"},
      // "a change in the effective communication bandwidth can trigger a
      //  similar repartitioning coupled with a selection of a partitioner
      //  ... that can tolerate the increased communication latency"
      {"bandwidth_drop_adaptation",
       "if bandwidth <= 30 tol 10 then action = repartition,"
       " comm = latency-tolerant, partitioner = pBD-ISP priority 2"},
      // "If on a networked cluster and AMR application is in octant VI use
      //  latency-tolerant communication"
      {"cluster_octant_vi_comm",
       "if arch = linux-cluster and octant = VI then"
       " comm = latency-tolerant"},
      // "If cache size of Y use refined grid components no larger than Q":
      // low available memory bounds the refined patch size.
      {"low_memory_patch_bound",
       "if memory <= 128 tol 32 then max_patch_cells = 16384"},
      // Node failure (node_up sensor reads 0 when the node is down):
      // migrate the failed component.
      {"node_failure_migrate",
       "if node_up <= 0.5 tol 0.2 then action = migrate priority 3"},
  };
  for (const NamedRule& rule : kRules)
    base.add(parse_rule(rule.rule, rule.name));
}

PolicyBase standard_policy_base() {
  PolicyBase base;
  install_octant_policies(base);
  install_system_policies(base);
  return base;
}

}  // namespace pragma::policy
