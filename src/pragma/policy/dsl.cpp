#include "pragma/policy/dsl.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pragma::policy {

namespace {

/// Clip a token echoed into an error message so hostile input cannot
/// balloon diagnostics.
std::string clip(const std::string& token) {
  constexpr std::size_t kMaxEcho = 40;
  if (token.size() <= kMaxEcho) return token;
  return token.substr(0, kMaxEcho) + "...";
}

/// Build "line N, column C" diagnostics with a source snippet and caret.
/// `line_base` is the 1-based number of the first line of `text` within
/// the enclosing document (parse_rules passes the file line).
[[noreturn]] void throw_parse_error(const std::string& text, std::size_t pos,
                                    int line_base,
                                    const std::string& message) {
  if (pos > text.size()) pos = text.size();
  std::size_t line_start = 0;
  int line = line_base;
  for (std::size_t i = 0; i < pos; ++i)
    if (text[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
  std::size_t line_end = text.find('\n', line_start);
  if (line_end == std::string::npos) line_end = text.size();
  const std::size_t column = pos - line_start + 1;

  // Window the snippet around the column so long lines stay readable.
  constexpr std::size_t kWindow = 72;
  std::size_t snippet_start = line_start;
  if (column > kWindow - 8)
    snippet_start = line_start + column - (kWindow - 8);
  std::string snippet =
      text.substr(snippet_start, std::min(line_end - snippet_start, kWindow));
  for (char& c : snippet)
    if (!std::isprint(static_cast<unsigned char>(c))) c = '?';
  std::string caret(pos >= snippet_start ? pos - snippet_start : 0, ' ');
  caret += '^';

  std::ostringstream os;
  os << "policy rule parse error at line " << line << ", column " << column
     << ": " << message << '\n'
     << "  " << snippet << '\n'
     << "  " << caret;
  throw std::invalid_argument(os.str());
}

struct Tokenizer {
  Tokenizer(const std::string& text, int line_base)
      : text_(text), line_base_(line_base) {}

  [[nodiscard]] bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[nodiscard]] std::string peek() {
    const std::size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

  std::string next() {
    skip_space();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    // Operators.
    if (c == '=' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '~' || c == '<' || c == '>') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        op += '=';
        ++pos_;
      }
      return op;
    }
    // Barewords / numbers: everything until whitespace or an operator char.
    std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '=' && text_[pos_] != ',' && text_[pos_] != '<' &&
           text_[pos_] != '>' && text_[pos_] != '~')
      ++pos_;
    last_token_start_ = start;
    return text_.substr(start, pos_ - start);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw_parse_error(text_, pos_, line_base_, message);
  }

  /// Fail pointing at the start of the most recent bareword token rather
  /// than the cursor (reads better for "got 'foo'" messages).
  [[noreturn]] void fail_at_token(const std::string& message) const {
    throw_parse_error(text_, last_token_start_, line_base_, message);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  const std::string& text_;
  int line_base_ = 1;
  std::size_t pos_ = 0;
  std::size_t last_token_start_ = 0;
};

bool is_number(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (out) *out = value;
  return true;
}

Value parse_value(const std::string& token) {
  double number = 0.0;
  if (is_number(token, &number)) return Value{number};
  return Value{token};
}

Op parse_op(Tokenizer& tok, const std::string& token) {
  if (token == "=") return Op::kEq;
  if (token == "~=") return Op::kApprox;
  if (token == "<") return Op::kLt;
  if (token == "<=") return Op::kLe;
  if (token == ">") return Op::kGt;
  if (token == ">=") return Op::kGe;
  tok.fail("expected an operator, got '" + clip(token) + "'");
}

Policy parse_rule_at(const std::string& text, const std::string& name,
                     int line_base) {
  Tokenizer tok(text, line_base);
  Policy policy;
  policy.name = name.empty() ? text : name;

  if (tok.next() != "if") tok.fail_at_token("rule must start with 'if'");

  // Conditions.
  while (true) {
    Condition condition;
    condition.attribute = tok.next();
    if (condition.attribute.empty()) tok.fail("expected attribute name");
    condition.op = parse_op(tok, tok.next());
    const std::string value = tok.next();
    if (value.empty()) tok.fail("expected condition value");
    condition.target = parse_value(value);
    if (tok.peek() == "tol") {
      tok.next();
      double tol = 0.0;
      if (!is_number(tok.next(), &tol)) tok.fail("expected tol number");
      condition.tol = tol;
    }
    policy.conditions.push_back(std::move(condition));
    const std::string keyword = tok.next();
    if (keyword == "and") continue;
    if (keyword == "then") break;
    tok.fail_at_token("expected 'and' or 'then', got '" + clip(keyword) +
                      "'");
  }

  // Action assignments.
  while (true) {
    const std::string key = tok.next();
    if (key.empty()) tok.fail("expected action assignment");
    if (tok.next() != "=") tok.fail("expected '=' in action");
    const std::string value = tok.next();
    if (value.empty()) tok.fail("expected action value");
    policy.action[key] = parse_value(value);
    if (tok.done()) break;
    const std::string keyword = tok.peek();
    if (keyword == ",") {
      tok.next();
      continue;
    }
    if (keyword == "priority") {
      tok.next();
      double priority = 1.0;
      if (!is_number(tok.next(), &priority))
        tok.fail("expected priority number");
      policy.priority = priority;
      break;
    }
    tok.fail("expected ',' or 'priority', got '" + clip(keyword) + "'");
  }
  if (!tok.done()) tok.fail("trailing tokens after rule");
  return policy;
}

std::vector<Policy> parse_rules_impl(const std::string& text) {
  std::vector<Policy> policies;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    if (blank) continue;
    policies.push_back(parse_rule_at(line, "rule_" +
                                     std::to_string(line_number),
                                     line_number));
  }
  return policies;
}

}  // namespace

Policy parse_rule(const std::string& text, const std::string& name) {
  return parse_rule_at(text, name, 1);
}

std::vector<Policy> parse_rules(const std::string& text) {
  return parse_rules_impl(text);
}

util::Expected<std::vector<Policy>> try_parse_rules(const std::string& text) {
  // The recursive-descent parser reports through one internal exception
  // type; this boundary converts it into a Status so callers handling
  // untrusted policy files never see a throw.
  try {
    return parse_rules_impl(text);
  } catch (const std::invalid_argument& error) {
    return util::Status::invalid(error.what());
  }
}

std::string format_rule(const Policy& policy) {
  std::ostringstream os;
  os << "if ";
  for (std::size_t i = 0; i < policy.conditions.size(); ++i) {
    const Condition& c = policy.conditions[i];
    if (i > 0) os << " and ";
    os << c.attribute << ' ' << to_string(c.op) << ' ' << to_string(c.target);
    if (c.tol > 0.0) os << " tol " << c.tol;
  }
  os << " then ";
  bool first = true;
  for (const auto& [key, value] : policy.action) {
    if (!first) os << ", ";
    os << key << " = " << to_string(value);
    first = false;
  }
  if (policy.priority != 1.0) os << " priority " << policy.priority;
  return os.str();
}

}  // namespace pragma::policy
