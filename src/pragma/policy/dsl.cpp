#include "pragma/policy/dsl.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace pragma::policy {

namespace {

struct Tokenizer {
  explicit Tokenizer(const std::string& text) : text_(text) {}

  [[nodiscard]] bool done() {
    skip_space();
    return pos_ >= text_.size();
  }

  [[nodiscard]] std::string peek() {
    const std::size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

  std::string next() {
    skip_space();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    // Operators.
    if (c == '=' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '~' || c == '<' || c == '>') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        op += '=';
        ++pos_;
      }
      return op;
    }
    // Barewords / numbers: everything until whitespace or an operator char.
    std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '=' && text_[pos_] != ',' && text_[pos_] != '<' &&
           text_[pos_] != '>' && text_[pos_] != '~')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("policy rule parse error at position " +
                                std::to_string(pos_) + ": " + message);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_number(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (out) *out = value;
  return true;
}

Value parse_value(const std::string& token) {
  double number = 0.0;
  if (is_number(token, &number)) return Value{number};
  return Value{token};
}

Op parse_op(Tokenizer& tok, const std::string& token) {
  if (token == "=") return Op::kEq;
  if (token == "~=") return Op::kApprox;
  if (token == "<") return Op::kLt;
  if (token == "<=") return Op::kLe;
  if (token == ">") return Op::kGt;
  if (token == ">=") return Op::kGe;
  tok.fail("expected an operator, got '" + token + "'");
}

}  // namespace

Policy parse_rule(const std::string& text, const std::string& name) {
  Tokenizer tok(text);
  Policy policy;
  policy.name = name.empty() ? text : name;

  if (tok.next() != "if") tok.fail("rule must start with 'if'");

  // Conditions.
  while (true) {
    Condition condition;
    condition.attribute = tok.next();
    if (condition.attribute.empty()) tok.fail("expected attribute name");
    condition.op = parse_op(tok, tok.next());
    const std::string value = tok.next();
    if (value.empty()) tok.fail("expected condition value");
    condition.target = parse_value(value);
    if (tok.peek() == "tol") {
      tok.next();
      double tol = 0.0;
      if (!is_number(tok.next(), &tol)) tok.fail("expected tol number");
      condition.tol = tol;
    }
    policy.conditions.push_back(std::move(condition));
    const std::string keyword = tok.next();
    if (keyword == "and") continue;
    if (keyword == "then") break;
    tok.fail("expected 'and' or 'then', got '" + keyword + "'");
  }

  // Action assignments.
  while (true) {
    const std::string key = tok.next();
    if (key.empty()) tok.fail("expected action assignment");
    if (tok.next() != "=") tok.fail("expected '=' in action");
    const std::string value = tok.next();
    if (value.empty()) tok.fail("expected action value");
    policy.action[key] = parse_value(value);
    if (tok.done()) break;
    const std::string keyword = tok.peek();
    if (keyword == ",") {
      tok.next();
      continue;
    }
    if (keyword == "priority") {
      tok.next();
      double priority = 1.0;
      if (!is_number(tok.next(), &priority))
        tok.fail("expected priority number");
      policy.priority = priority;
      break;
    }
    tok.fail("expected ',' or 'priority', got '" + keyword + "'");
  }
  if (!tok.done()) tok.fail("trailing tokens after rule");
  return policy;
}

std::vector<Policy> parse_rules(const std::string& text) {
  std::vector<Policy> policies;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    if (blank) continue;
    policies.push_back(
        parse_rule(line, "rule_" + std::to_string(line_number)));
  }
  return policies;
}

std::string format_rule(const Policy& policy) {
  std::ostringstream os;
  os << "if ";
  for (std::size_t i = 0; i < policy.conditions.size(); ++i) {
    const Condition& c = policy.conditions[i];
    if (i > 0) os << " and ";
    os << c.attribute << ' ' << to_string(c.op) << ' ' << to_string(c.target);
    if (c.tol > 0.0) os << " tol " << c.tol;
  }
  os << " then ";
  bool first = true;
  for (const auto& [key, value] : policy.action) {
    if (!first) os << ", ";
    os << key << " = " << to_string(value);
    first = false;
  }
  if (policy.priority != 1.0) os << " priority " << policy.priority;
  return os.str();
}

}  // namespace pragma::policy
