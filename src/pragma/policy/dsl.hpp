// A small rule language for the programmable policy base.
//
// "Programmability of the knowledge base will allow rules to be modified,
//  adapted and extended."  Rules read like the paper's examples:
//
//   if octant = VI and arch = cluster then partitioner = pBD-ISP
//   if load > 0.8 then action = repartition priority 2
//   if bandwidth ~= 100 tol 20 then comm = latency-tolerant
//
// Grammar (one rule per line; '#' starts a comment):
//   rule      := "if" cond ("and" cond)* "then" assign ("," assign)*
//                ["priority" NUMBER]
//   cond      := IDENT op VALUE ["tol" NUMBER]
//   op        := "=" | "~=" | "<" | "<=" | ">" | ">="
//   assign    := IDENT "=" VALUE
//   VALUE     := NUMBER | bareword
#pragma once

#include <string>
#include <vector>

#include "pragma/policy/policy.hpp"
#include "pragma/util/status.hpp"

namespace pragma::policy {

/// Parse a single rule.  `name` becomes the policy name (auto-generated
/// from the text if empty).  Throws std::invalid_argument on malformed
/// input; the message carries the line number (when known), the column,
/// a source snippet and a caret marking the offending position:
///
///   policy rule parse error at line 3, column 14: expected 'and' or
///   'then', got 'foo'
///     if load > 0.8 foo = bar
///                   ^
[[nodiscard]] Policy parse_rule(const std::string& text,
                                const std::string& name = {});

/// Parse a newline-separated rule set, skipping blank lines and comments.
/// Throws like parse_rule, with the failing line number and snippet.
[[nodiscard]] std::vector<Policy> parse_rules(const std::string& text);

/// Structured-error variant of parse_rules for untrusted policy files:
/// returns the parsed rule set or a Status whose message has the same
/// line/column/snippet diagnostics, without using exceptions for control
/// flow.
[[nodiscard]] util::Expected<std::vector<Policy>> try_parse_rules(
    const std::string& text);

/// Render a policy back into rule syntax (round-trips through parse_rule).
[[nodiscard]] std::string format_rule(const Policy& policy);

}  // namespace pragma::policy
