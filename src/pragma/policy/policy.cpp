#include "pragma/policy/policy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pragma::policy {

std::string to_string(const Value& value) {
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  std::ostringstream os;
  os << std::get<double>(value);
  return os.str();
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kApprox:
      return "~=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
  }
  return "?";
}

namespace {
/// Smooth step from 1 (well inside) to 0 (well outside) across a boundary
/// at 0 with softness `tol`; crisp when tol == 0.
double soft_below(double distance, double tol) {
  if (tol <= 0.0) return distance <= 0.0 ? 1.0 : 0.0;
  // Logistic membership centered at the boundary.
  return 1.0 / (1.0 + std::exp(distance / (tol / 4.0)));
}
}  // namespace

double Condition::membership(const Value& value) const {
  const bool value_is_str = std::holds_alternative<std::string>(value);
  const bool target_is_str = std::holds_alternative<std::string>(target);
  if (value_is_str != target_is_str) return 0.0;

  if (value_is_str) {
    const bool equal =
        std::get<std::string>(value) == std::get<std::string>(target);
    switch (op) {
      case Op::kEq:
      case Op::kApprox:
        return equal ? 1.0 : 0.0;
      default:
        return 0.0;  // ordering undefined on strings
    }
  }

  const double v = std::get<double>(value);
  const double t = std::get<double>(target);
  switch (op) {
    case Op::kEq:
      if (tol <= 0.0) return v == t ? 1.0 : 0.0;
      [[fallthrough]];
    case Op::kApprox: {
      const double width = tol > 0.0 ? tol : std::max(1e-9, 0.05 * std::abs(t));
      const double d = (v - t) / width;
      return std::exp(-d * d);
    }
    case Op::kLt:
      return soft_below(v - t, tol);
    case Op::kLe:
      return soft_below(v - t, tol);
    case Op::kGt:
      return soft_below(t - v, tol);
    case Op::kGe:
      return soft_below(t - v, tol);
  }
  return 0.0;
}

double Policy::match(const AttributeSet& query, double missing_factor) const {
  double score = 1.0;
  for (const Condition& condition : conditions) {
    const auto it = query.find(condition.attribute);
    if (it == query.end()) {
      score *= missing_factor;
      continue;
    }
    score *= condition.membership(it->second);
    if (score <= 0.0) return 0.0;
  }
  return score;
}

void PolicyBase::add(Policy policy) {
  for (Policy& existing : policies_) {
    if (existing.name == policy.name) {
      existing = std::move(policy);
      return;
    }
  }
  policies_.push_back(std::move(policy));
}

bool PolicyBase::remove(const std::string& name) {
  const auto it =
      std::remove_if(policies_.begin(), policies_.end(),
                     [&](const Policy& p) { return p.name == name; });
  const bool found = it != policies_.end();
  policies_.erase(it, policies_.end());
  return found;
}

const Policy* PolicyBase::find(const std::string& name) const {
  for (const Policy& policy : policies_)
    if (policy.name == name) return &policy;
  return nullptr;
}

std::vector<Match> PolicyBase::query(const AttributeSet& attributes,
                                     double min_score) const {
  std::vector<Match> matches;
  for (const Policy& policy : policies_) {
    const double score = policy.match(attributes) * policy.priority;
    if (score >= min_score) matches.push_back(Match{&policy, score});
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const Match& a, const Match& b) {
                     return a.score > b.score;
                   });
  return matches;
}

std::optional<AttributeSet> PolicyBase::best_action(
    const AttributeSet& attributes) const {
  const std::vector<Match> matches = query(attributes);
  if (matches.empty()) return std::nullopt;
  return matches.front().policy->action;
}

std::optional<Value> PolicyBase::decide(const AttributeSet& attributes,
                                        const std::string& key) const {
  for (const Match& match : query(attributes)) {
    const auto it = match.policy->action.find(key);
    if (it != match.policy->action.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace pragma::policy
