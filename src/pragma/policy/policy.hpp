// The adaptation "policy" knowledge base (Section 3.5).
//
// "Policies encode rules, heuristics and experiences that relate system and
//  application state abstraction to system/application configurations,
//  algorithms and mechanisms. [...] the policy knowledge base will present
//  an associative interface that allows the agents to formulate partial
//  queries and use fuzzy reasoning."
//
// A Policy is a set of fuzzy conditions over named attributes plus an
// action (a set of attribute assignments, e.g. partitioner=pBD-ISP).  A
// query is a partial attribute set; each policy scores by the combined
// membership of its conditions, and the base returns policies ranked by
// score x priority.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace pragma::policy {

/// Attribute values are strings or numbers.
using Value = std::variant<std::string, double>;

[[nodiscard]] std::string to_string(const Value& value);

/// A named attribute map ("octant" -> "VI", "load" -> 0.8, ...).
using AttributeSet = std::map<std::string, Value>;

/// Comparison operators supported by conditions.
enum class Op {
  kEq,      ///< exact equality (crisp for strings, tolerant for numbers)
  kApprox,  ///< fuzzy equality with a Gaussian membership of width `tol`
  kLt,
  kLe,
  kGt,
  kGe,
};

[[nodiscard]] std::string to_string(Op op);

/// A single fuzzy condition over one attribute.
struct Condition {
  std::string attribute;
  Op op = Op::kEq;
  Value target;
  /// Fuzziness scale for numeric comparisons (absolute units).  For the
  /// ordering operators it softens the boundary; for kApprox it is the
  /// Gaussian width.
  double tol = 0.0;

  /// Membership of `value` in this condition, in [0, 1].
  [[nodiscard]] double membership(const Value& value) const;
};

/// A rule: conditions -> action, with a priority used to break ties.
struct Policy {
  std::string name;
  std::vector<Condition> conditions;
  AttributeSet action;
  double priority = 1.0;

  /// Match score against a (possibly partial) query: the product of the
  /// memberships of all conditions whose attribute appears in the query;
  /// conditions on missing attributes contribute the penalty factor
  /// `missing_factor` (allowing partial queries while keeping rules whose
  /// conditions were actually confirmed ranked above speculative ones).
  [[nodiscard]] double match(const AttributeSet& query,
                             double missing_factor = 0.25) const;
};

/// A ranked query hit.
struct Match {
  const Policy* policy = nullptr;
  double score = 0.0;
};

/// The programmable policy store.
class PolicyBase {
 public:
  /// Add a policy (replaces any policy with the same name).
  void add(Policy policy);
  /// Remove by name; returns true if found.
  bool remove(const std::string& name);
  [[nodiscard]] std::size_t size() const { return policies_.size(); }
  [[nodiscard]] const Policy* find(const std::string& name) const;

  /// Associative query: all policies with score >= min_score, ranked by
  /// score * priority descending.
  [[nodiscard]] std::vector<Match> query(const AttributeSet& attributes,
                                         double min_score = 0.05) const;

  /// The action of the best match, if any.
  [[nodiscard]] std::optional<AttributeSet> best_action(
      const AttributeSet& attributes) const;

  /// Convenience: the value a best-matching policy assigns to `key`.
  [[nodiscard]] std::optional<Value> decide(const AttributeSet& attributes,
                                            const std::string& key) const;

 private:
  std::vector<Policy> policies_;
};

}  // namespace pragma::policy
