// The external resource monitoring system (NWS analogue).
//
// Periodically samples every node's available CPU fraction, available
// memory, and uplink bandwidth into per-resource time series, keeps an
// adaptive forecaster per series, and answers "current" and "forecast"
// queries.  Measurements carry configurable observation noise — real
// monitors never see the true state.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "pragma/grid/cluster.hpp"
#include "pragma/monitor/forecaster.hpp"
#include "pragma/monitor/series.hpp"
#include "pragma/sim/simulator.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::monitor {

/// Which resource a query refers to.
enum class Resource { kCpu, kMemory, kBandwidth };

struct ResourceMonitorConfig {
  /// Seconds between measurement sweeps.
  double period_s = 2.0;
  /// Relative observation noise (std dev as a fraction of the reading).
  double noise = 0.02;
  /// Retained history length per series.
  std::size_t history = 2048;
};

/// A reading for one node: the three monitored quantities.
struct NodeReading {
  /// Available compute capacity in Gflop/s (peak speed x availability —
  /// what a capacity-aware partitioner actually needs on a heterogeneous
  /// cluster).
  double cpu_gflops = 0.0;
  double memory_mib = 0.0;      // available memory
  double bandwidth_mbps = 0.0;  // available uplink bandwidth
};

class ResourceMonitor {
 public:
  ResourceMonitor(sim::Simulator& simulator, const grid::Cluster& cluster,
                  ResourceMonitorConfig config, util::Rng rng);

  /// Begin periodic sampling.
  void start();
  void stop();

  /// Restrict sweeps to reachable nodes: when set and the predicate says
  /// no (node dead or partitioned away from the monitor), the sweep skips
  /// that node and its series simply stops growing — consumers see a
  /// stale-but-last-known reading, exactly like a real NWS probe timeout.
  void set_reachability(std::function<bool(grid::NodeId)> reachable);

  /// Take one measurement sweep immediately (also usable without start()).
  void sample_now();

  /// Simulated time of the most recent retained sample for a node
  /// (-infinity when the series is empty).  Lets consumers weigh staleness.
  [[nodiscard]] double last_sample_time(grid::NodeId node,
                                        Resource resource) const;

  /// Configured sweep period (staleness is measured in these units).
  [[nodiscard]] double period() const { return config_.period_s; }

  /// Most recent (noisy) reading for a node.
  [[nodiscard]] NodeReading current(grid::NodeId node) const;

  /// One-step-ahead forecast for a node/resource.
  [[nodiscard]] double forecast(grid::NodeId node, Resource resource) const;

  /// Full history for a node/resource.
  [[nodiscard]] const TimeSeries& series(grid::NodeId node,
                                         Resource resource) const;

  /// Name of the forecaster member currently trusted for a series.
  [[nodiscard]] std::string forecaster_choice(grid::NodeId node,
                                              Resource resource) const;

  [[nodiscard]] std::size_t sweeps() const { return sweeps_; }
  [[nodiscard]] std::size_t node_count() const { return per_node_.size(); }

 private:
  struct PerResource {
    TimeSeries series;
    std::unique_ptr<AdaptiveForecaster> forecaster;
    explicit PerResource(std::size_t history)
        : series(history), forecaster(AdaptiveForecaster::standard()) {}
  };
  struct PerNode {
    PerResource cpu;
    PerResource memory;
    PerResource bandwidth;
    explicit PerNode(std::size_t history)
        : cpu(history), memory(history), bandwidth(history) {}
  };
  [[nodiscard]] const PerResource& resource_of(grid::NodeId node,
                                               Resource resource) const;
  [[nodiscard]] double noisy(double value);

  sim::Simulator& simulator_;
  const grid::Cluster& cluster_;
  ResourceMonitorConfig config_;
  util::Rng rng_;
  std::function<bool(grid::NodeId)> reachable_;
  std::vector<PerNode> per_node_;
  sim::EventHandle tick_;
  bool running_ = false;
  std::size_t sweeps_ = 0;
};

}  // namespace pragma::monitor
