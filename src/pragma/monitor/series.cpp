#include "pragma/monitor/series.hpp"

namespace pragma::monitor {

TimeSeries::TimeSeries(std::size_t max_samples)
    : max_samples_(max_samples == 0 ? 1 : max_samples) {}

void TimeSeries::append(sim::SimTime time, double value) {
  samples_.push_back(Sample{time, value});
  if (samples_.size() > max_samples_) samples_.pop_front();
}

void TimeSeries::clear() { samples_.clear(); }

double TimeSeries::last_value(double fallback) const {
  return samples_.empty() ? fallback : samples_.back().value;
}

std::vector<double> TimeSeries::recent_values(std::size_t n) const {
  const std::size_t count = n < samples_.size() ? n : samples_.size();
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = samples_.size() - count; i < samples_.size(); ++i)
    out.push_back(samples_[i].value);
  return out;
}

std::vector<double> TimeSeries::values() const {
  return recent_values(samples_.size());
}

}  // namespace pragma::monitor
