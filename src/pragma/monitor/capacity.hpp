// Relative-capacity calculator (Figure 4, left half).
//
// "The relative capacity C_i for the i-th grid-element is defined as the
//  weighted sum of normalized values of the individual available CPU P_i,
//  memory M_i, and link bandwidth B_i capacities returned by NWS.  Weights
//  are application dependent and reflect its computational, memory, and
//  communication requirements.  Once the relative capacities of the
//  processors are computed, the workload is distributed proportionately."
#pragma once

#include <vector>

#include "pragma/monitor/resource_monitor.hpp"

namespace pragma::monitor {

/// Application-dependent weights for combining resource dimensions.
/// They are normalized to sum to 1 at use time.
struct CapacityWeights {
  double cpu = 0.6;
  double memory = 0.2;
  double bandwidth = 0.2;
};

/// The computed capacities: one non-negative fraction per node, summing to 1
/// over nodes that are up (all zeros if nothing is available).
struct RelativeCapacities {
  std::vector<double> fraction;
  [[nodiscard]] std::size_t size() const { return fraction.size(); }
  [[nodiscard]] double operator[](std::size_t i) const { return fraction[i]; }
};

/// How to treat readings from nodes the monitor could not sweep recently
/// (dead, partitioned, or probe timeouts).  A reading older than
/// `fresh_age_s` decays exponentially toward a conservative prior instead
/// of being trusted at face value: a silent node earns a shrinking share
/// of the workload rather than its last-known one.
struct StalenessPolicy {
  /// Readings at most this old count as fresh (typically 2x sweep period).
  double fresh_age_s = 4.0;
  /// Exponential decay time constant applied beyond fresh_age_s.
  double decay_tau_s = 10.0;
  /// The prior the reading decays toward, as a fraction of the median
  /// *fresh* reading across nodes (0 = assume the silent node has nothing).
  double prior_fraction = 0.0;
};

class CapacityCalculator {
 public:
  explicit CapacityCalculator(CapacityWeights weights = {})
      : weights_(weights) {}

  [[nodiscard]] const CapacityWeights& weights() const { return weights_; }
  void set_weights(CapacityWeights weights) { weights_ = weights; }

  /// Compute capacities from the monitor's *current* readings.
  [[nodiscard]] RelativeCapacities from_current(
      const ResourceMonitor& monitor) const;

  /// Compute capacities from the monitor's one-step *forecasts* (proactive
  /// management, the Pragma extension over plain NWS consumption).
  [[nodiscard]] RelativeCapacities from_forecast(
      const ResourceMonitor& monitor) const;

  /// Staleness-aware variants for a degraded monitor: readings (or
  /// forecasts) from series last sampled before `now - fresh_age` decay
  /// toward the conservative prior.  The proactive variant additionally
  /// falls back from the forecaster to the decayed last reading whenever a
  /// series has gaps — extrapolating a forecaster across a hole in its
  /// input is worse than admitting ignorance.
  [[nodiscard]] RelativeCapacities from_current(
      const ResourceMonitor& monitor, double now,
      const StalenessPolicy& policy) const;
  [[nodiscard]] RelativeCapacities from_forecast(
      const ResourceMonitor& monitor, double now,
      const StalenessPolicy& policy) const;

  /// Compute capacities from raw readings (used by tests and by callers
  /// that bypass the monitor).
  [[nodiscard]] RelativeCapacities from_readings(
      const std::vector<NodeReading>& readings) const;

 private:
  CapacityWeights weights_;
};

}  // namespace pragma::monitor
