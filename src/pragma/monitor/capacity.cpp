#include "pragma/monitor/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

namespace pragma::monitor {

namespace {

RelativeCapacities combine(const std::vector<double>& cpu,
                           const std::vector<double>& mem,
                           const std::vector<double>& bw,
                           const CapacityWeights& weights) {
  const std::size_t n = cpu.size();
  RelativeCapacities out;
  out.fraction.assign(n, 0.0);

  auto normalize = [](const std::vector<double>& xs) {
    double total = 0.0;
    for (double x : xs) total += std::max(0.0, x);
    std::vector<double> norm(xs.size(), 0.0);
    if (total <= 0.0) return norm;
    for (std::size_t i = 0; i < xs.size(); ++i)
      norm[i] = std::max(0.0, xs[i]) / total;
    return norm;
  };

  const std::vector<double> ncpu = normalize(cpu);
  const std::vector<double> nmem = normalize(mem);
  const std::vector<double> nbw = normalize(bw);

  double wsum = weights.cpu + weights.memory + weights.bandwidth;
  if (wsum <= 0.0) wsum = 1.0;
  const double wc = weights.cpu / wsum;
  const double wm = weights.memory / wsum;
  const double wb = weights.bandwidth / wsum;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.fraction[i] = wc * ncpu[i] + wm * nmem[i] + wb * nbw[i];
    total += out.fraction[i];
  }
  if (total > 0.0)
    for (double& f : out.fraction) f /= total;
  return out;
}

/// Trust weight of a reading of the given age under the policy.
double staleness_weight(double age_s, const StalenessPolicy& policy) {
  if (age_s <= policy.fresh_age_s) return 1.0;
  if (policy.decay_tau_s <= 0.0) return 0.0;
  return std::exp(-(age_s - policy.fresh_age_s) / policy.decay_tau_s);
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  return xs[mid];
}

/// Blend per-node values toward the conservative prior by staleness.
void apply_staleness(std::vector<double>& values,
                     const std::vector<double>& ages,
                     const StalenessPolicy& policy) {
  std::vector<double> fresh;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (ages[i] <= policy.fresh_age_s) fresh.push_back(values[i]);
  const double prior = policy.prior_fraction * median_of(std::move(fresh));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w = staleness_weight(ages[i], policy);
    values[i] = w * values[i] + (1.0 - w) * prior;
  }
}

}  // namespace

RelativeCapacities CapacityCalculator::from_current(
    const ResourceMonitor& monitor) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (grid::NodeId i = 0; i < n; ++i) {
    const NodeReading reading = monitor.current(i);
    cpu[i] = reading.cpu_gflops;
    mem[i] = reading.memory_mib;
    bw[i] = reading.bandwidth_mbps;
  }
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_forecast(
    const ResourceMonitor& monitor) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (grid::NodeId i = 0; i < n; ++i) {
    cpu[i] = monitor.forecast(i, Resource::kCpu);
    mem[i] = monitor.forecast(i, Resource::kMemory);
    bw[i] = monitor.forecast(i, Resource::kBandwidth);
  }
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_current(
    const ResourceMonitor& monitor, double now,
    const StalenessPolicy& policy) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  std::vector<double> cpu_age(n), mem_age(n), bw_age(n);
  for (grid::NodeId i = 0; i < n; ++i) {
    const NodeReading reading = monitor.current(i);
    cpu[i] = reading.cpu_gflops;
    mem[i] = reading.memory_mib;
    bw[i] = reading.bandwidth_mbps;
    cpu_age[i] = now - monitor.last_sample_time(i, Resource::kCpu);
    mem_age[i] = now - monitor.last_sample_time(i, Resource::kMemory);
    bw_age[i] = now - monitor.last_sample_time(i, Resource::kBandwidth);
  }
  apply_staleness(cpu, cpu_age, policy);
  apply_staleness(mem, mem_age, policy);
  apply_staleness(bw, bw_age, policy);
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_forecast(
    const ResourceMonitor& monitor, double now,
    const StalenessPolicy& policy) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  std::vector<double> cpu_age(n), mem_age(n), bw_age(n);
  const Resource kinds[] = {Resource::kCpu, Resource::kMemory,
                            Resource::kBandwidth};
  for (grid::NodeId i = 0; i < n; ++i) {
    const NodeReading reading = monitor.current(i);
    const double raw[] = {reading.cpu_gflops, reading.memory_mib,
                          reading.bandwidth_mbps};
    double out[3];
    double age[3];
    for (int r = 0; r < 3; ++r) {
      age[r] = now - monitor.last_sample_time(i, kinds[r]);
      // Gap in the series: the forecaster's state is frozen at the gap's
      // start, so fall back to the (decaying) last observation instead.
      out[r] = age[r] <= policy.fresh_age_s ? monitor.forecast(i, kinds[r])
                                            : raw[r];
    }
    cpu[i] = out[0];
    mem[i] = out[1];
    bw[i] = out[2];
    cpu_age[i] = age[0];
    mem_age[i] = age[1];
    bw_age[i] = age[2];
  }
  apply_staleness(cpu, cpu_age, policy);
  apply_staleness(mem, mem_age, policy);
  apply_staleness(bw, bw_age, policy);
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_readings(
    const std::vector<NodeReading>& readings) const {
  const std::size_t n = readings.size();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpu[i] = readings[i].cpu_gflops;
    mem[i] = readings[i].memory_mib;
    bw[i] = readings[i].bandwidth_mbps;
  }
  return combine(cpu, mem, bw, weights_);
}

}  // namespace pragma::monitor
