#include "pragma/monitor/capacity.hpp"

#include <algorithm>
#include <cmath>

namespace pragma::monitor {

namespace {

RelativeCapacities combine(const std::vector<double>& cpu,
                           const std::vector<double>& mem,
                           const std::vector<double>& bw,
                           const CapacityWeights& weights) {
  const std::size_t n = cpu.size();
  RelativeCapacities out;
  out.fraction.assign(n, 0.0);

  auto normalize = [](const std::vector<double>& xs) {
    double total = 0.0;
    for (double x : xs) total += std::max(0.0, x);
    std::vector<double> norm(xs.size(), 0.0);
    if (total <= 0.0) return norm;
    for (std::size_t i = 0; i < xs.size(); ++i)
      norm[i] = std::max(0.0, xs[i]) / total;
    return norm;
  };

  const std::vector<double> ncpu = normalize(cpu);
  const std::vector<double> nmem = normalize(mem);
  const std::vector<double> nbw = normalize(bw);

  double wsum = weights.cpu + weights.memory + weights.bandwidth;
  if (wsum <= 0.0) wsum = 1.0;
  const double wc = weights.cpu / wsum;
  const double wm = weights.memory / wsum;
  const double wb = weights.bandwidth / wsum;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.fraction[i] = wc * ncpu[i] + wm * nmem[i] + wb * nbw[i];
    total += out.fraction[i];
  }
  if (total > 0.0)
    for (double& f : out.fraction) f /= total;
  return out;
}

}  // namespace

RelativeCapacities CapacityCalculator::from_current(
    const ResourceMonitor& monitor) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (grid::NodeId i = 0; i < n; ++i) {
    const NodeReading reading = monitor.current(i);
    cpu[i] = reading.cpu_gflops;
    mem[i] = reading.memory_mib;
    bw[i] = reading.bandwidth_mbps;
  }
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_forecast(
    const ResourceMonitor& monitor) const {
  const std::size_t n = monitor.node_count();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (grid::NodeId i = 0; i < n; ++i) {
    cpu[i] = monitor.forecast(i, Resource::kCpu);
    mem[i] = monitor.forecast(i, Resource::kMemory);
    bw[i] = monitor.forecast(i, Resource::kBandwidth);
  }
  return combine(cpu, mem, bw, weights_);
}

RelativeCapacities CapacityCalculator::from_readings(
    const std::vector<NodeReading>& readings) const {
  const std::size_t n = readings.size();
  std::vector<double> cpu(n), mem(n), bw(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpu[i] = readings[i].cpu_gflops;
    mem[i] = readings[i].memory_mib;
    bw[i] = readings[i].bandwidth_mbps;
  }
  return combine(cpu, mem, bw, weights_);
}

}  // namespace pragma::monitor
