#include "pragma/monitor/forecaster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pragma::monitor {

std::string SlidingMeanForecaster::name() const {
  return "sliding_mean(" + std::to_string(window_.capacity()) + ")";
}

std::string SlidingMedianForecaster::name() const {
  return "sliding_median(" + std::to_string(window_.capacity()) + ")";
}

std::string ExpSmoothingForecaster::name() const {
  return "exp_smooth(" + std::to_string(alpha_) + ")";
}

std::string Ar1Forecaster::name() const {
  return "ar1(" + std::to_string(window_.capacity()) + ")";
}

void Ar1Forecaster::observe(double value) {
  window_.push(value);
  last_ = value;
  has_last_ = true;
}

double Ar1Forecaster::predict() const {
  if (!has_last_) return 0.0;
  const std::vector<double> values = window_.values();
  if (values.size() < 4) return last_;
  std::vector<double> x(values.begin(), values.end() - 1);
  std::vector<double> y(values.begin() + 1, values.end());
  const util::LinearFit fit = util::linear_fit(x, y);
  // Guard against unstable fits on flat or degenerate windows.
  if (!std::isfinite(fit.slope) || std::abs(fit.slope) > 2.0) return last_;
  return fit.intercept + fit.slope * last_;
}

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> members,
    std::size_t error_window)
    : error_window_(error_window) {
  if (members.empty())
    throw std::invalid_argument("AdaptiveForecaster: no members");
  members_.reserve(members.size());
  for (auto& member : members)
    members_.push_back(
        Member{std::move(member), util::SlidingWindow(error_window_)});
}

std::unique_ptr<AdaptiveForecaster> AdaptiveForecaster::standard(
    std::size_t error_window) {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.push_back(std::make_unique<LastValueForecaster>());
  members.push_back(std::make_unique<RunningMeanForecaster>());
  members.push_back(std::make_unique<SlidingMeanForecaster>(8));
  members.push_back(std::make_unique<SlidingMeanForecaster>(32));
  members.push_back(std::make_unique<SlidingMedianForecaster>(15));
  members.push_back(std::make_unique<ExpSmoothingForecaster>(0.25));
  members.push_back(std::make_unique<ExpSmoothingForecaster>(0.6));
  members.push_back(std::make_unique<Ar1Forecaster>(32));
  return std::make_unique<AdaptiveForecaster>(std::move(members),
                                              error_window);
}

void AdaptiveForecaster::observe(double value) {
  for (Member& member : members_) {
    member.errors.push(std::abs(member.forecaster->predict() - value));
    member.forecaster->observe(value);
  }
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  double best_error = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const double err = members_[i].errors.size() == 0
                           ? std::numeric_limits<double>::infinity()
                           : members_[i].errors.mean();
    if (err < best_error) {
      best_error = err;
      best = i;
    }
  }
  return best;
}

double AdaptiveForecaster::predict() const {
  return members_[best_index()].forecaster->predict();
}

std::unique_ptr<Forecaster> AdaptiveForecaster::clone() const {
  std::vector<std::unique_ptr<Forecaster>> members;
  members.reserve(members_.size());
  for (const Member& member : members_)
    members.push_back(member.forecaster->clone());
  return std::make_unique<AdaptiveForecaster>(std::move(members),
                                              error_window_);
}

std::string AdaptiveForecaster::best_member() const {
  return members_[best_index()].forecaster->name();
}

std::vector<double> AdaptiveForecaster::member_errors() const {
  std::vector<double> errors;
  errors.reserve(members_.size());
  for (const Member& member : members_)
    errors.push_back(member.errors.size() == 0 ? 0.0 : member.errors.mean());
  return errors;
}

double evaluate_mae(Forecaster& forecaster, std::span<const double> series) {
  if (series.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) {
      total += std::abs(forecaster.predict() - series[i]);
      ++count;
    }
    forecaster.observe(series[i]);
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}


SeriesForecaster::SeriesForecaster(std::size_t history,
                                   std::size_t trend_window)
    : series_(history),
      trend_window_(std::max<std::size_t>(trend_window, 2)),
      ensemble_(AdaptiveForecaster::standard()) {}

void SeriesForecaster::observe(sim::SimTime time, double value) {
  series_.append(time, value);
  ensemble_->observe(value);
}

double SeriesForecaster::predict_next() const {
  if (series_.empty()) return 0.0;
  return ensemble_->predict();
}

double SeriesForecaster::trend() const {
  const std::vector<double> recent = series_.recent_values(trend_window_);
  const std::size_t n = recent.size();
  if (n < 2) return 0.0;
  // Least squares over (index, value): slope in value-per-observation.
  double sum_x = 0.0, sum_y = 0.0, sum_xy = 0.0, sum_xx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sum_x += x;
    sum_y += recent[i];
    sum_xy += x * recent[i];
    sum_xx += x * x;
  }
  const double count = static_cast<double>(n);
  const double denom = count * sum_xx - sum_x * sum_x;
  if (denom == 0.0) return 0.0;
  return (count * sum_xy - sum_x * sum_y) / denom;
}

double SeriesForecaster::predict_ahead(std::size_t steps) const {
  const double base = predict_next();
  if (steps == 0) return base;
  return std::max(0.0, base + trend() * static_cast<double>(steps));
}

std::string SeriesForecaster::best_member() const {
  return ensemble_->best_member();
}

}  // namespace pragma::monitor
