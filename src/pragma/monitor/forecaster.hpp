// Short-term resource forecasting, after the Network Weather Service.
//
// NWS runs a family of simple predictors over each measurement series and,
// at each step, trusts the predictor with the lowest trailing error.  The
// Pragma system-characterization component consumes these forecasts to make
// proactive adaptation decisions.  This file implements the predictor
// family and the adaptive (ensemble) selector.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pragma/monitor/series.hpp"
#include "pragma/util/stats.hpp"

namespace pragma::monitor {

/// Incremental one-step-ahead predictor over a scalar series.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Feed the next observation.
  virtual void observe(double value) = 0;
  /// Predict the next observation.  Implementations must be callable before
  /// any observation (returning a neutral default).
  [[nodiscard]] virtual double predict() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Fresh instance with the same configuration.
  [[nodiscard]] virtual std::unique_ptr<Forecaster> clone() const = 0;
};

/// Predicts the last observed value (NWS "LAST").
class LastValueForecaster final : public Forecaster {
 public:
  void observe(double value) override { last_ = value; }
  [[nodiscard]] double predict() const override { return last_; }
  [[nodiscard]] std::string name() const override { return "last"; }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<LastValueForecaster>();
  }

 private:
  double last_ = 0.0;
};

/// Running mean over the whole history.
class RunningMeanForecaster final : public Forecaster {
 public:
  void observe(double value) override { acc_.add(value); }
  [[nodiscard]] double predict() const override { return acc_.mean(); }
  [[nodiscard]] std::string name() const override { return "mean"; }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<RunningMeanForecaster>();
  }

 private:
  util::Accumulator acc_;
};

/// Mean over a sliding window of the last `window` observations.
class SlidingMeanForecaster final : public Forecaster {
 public:
  explicit SlidingMeanForecaster(std::size_t window) : window_(window) {}
  void observe(double value) override { window_.push(value); }
  [[nodiscard]] double predict() const override { return window_.mean(); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<SlidingMeanForecaster>(window_.capacity());
  }

 private:
  util::SlidingWindow window_;
};

/// Median over a sliding window (robust to bursts).
class SlidingMedianForecaster final : public Forecaster {
 public:
  explicit SlidingMedianForecaster(std::size_t window) : window_(window) {}
  void observe(double value) override { window_.push(value); }
  [[nodiscard]] double predict() const override { return window_.median(); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<SlidingMedianForecaster>(window_.capacity());
  }

 private:
  util::SlidingWindow window_;
};

/// Exponential smoothing with gain alpha in (0, 1].
class ExpSmoothingForecaster final : public Forecaster {
 public:
  explicit ExpSmoothingForecaster(double alpha) : alpha_(alpha) {}
  void observe(double value) override {
    if (!seeded_) {
      estimate_ = value;
      seeded_ = true;
    } else {
      estimate_ += alpha_ * (value - estimate_);
    }
  }
  [[nodiscard]] double predict() const override { return estimate_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<ExpSmoothingForecaster>(alpha_);
  }

 private:
  double alpha_;
  double estimate_ = 0.0;
  bool seeded_ = false;
};

/// First-order autoregressive predictor fitted incrementally over a sliding
/// window: x[t+1] = a + b * x[t] with (a, b) from least squares on lagged
/// pairs.
class Ar1Forecaster final : public Forecaster {
 public:
  explicit Ar1Forecaster(std::size_t window) : window_(window) {}
  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<Ar1Forecaster>(window_.capacity());
  }

 private:
  util::SlidingWindow window_;
  double last_ = 0.0;
  bool has_last_ = false;
};

/// NWS-style adaptive selector: runs every member forecaster in parallel,
/// tracks each one's trailing mean absolute error over a window, and
/// predicts with the current best.
class AdaptiveForecaster final : public Forecaster {
 public:
  /// Build with an explicit member set; takes ownership.
  explicit AdaptiveForecaster(
      std::vector<std::unique_ptr<Forecaster>> members,
      std::size_t error_window = 32);

  /// The default NWS-like ensemble (last, mean, sliding means/medians,
  /// exponential smoothing, AR(1)).
  [[nodiscard]] static std::unique_ptr<AdaptiveForecaster> standard(
      std::size_t error_window = 32);

  void observe(double value) override;
  [[nodiscard]] double predict() const override;
  [[nodiscard]] std::string name() const override { return "adaptive"; }
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

  /// Name of the member currently trusted.
  [[nodiscard]] std::string best_member() const;
  /// Trailing MAE per member, same order as construction.
  [[nodiscard]] std::vector<double> member_errors() const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

 private:
  struct Member {
    std::unique_ptr<Forecaster> forecaster;
    util::SlidingWindow errors;
  };
  [[nodiscard]] std::size_t best_index() const;

  std::vector<Member> members_;
  std::size_t error_window_;
};

/// Evaluate a forecaster over a series: feeds values one at a time, records
/// one-step-ahead absolute errors (skipping the untrained first prediction),
/// and returns the mean absolute error.
[[nodiscard]] double evaluate_mae(Forecaster& forecaster,
                                  std::span<const double> series);

/// A timestamped series wired to the NWS ensemble, plus multi-step lookahead.
///
/// The service-layer autoscaler feeds demand series (per-tenant usage,
/// queue depth) through this: observations land in a bounded TimeSeries
/// *and* the AdaptiveForecaster, predict_next() is the ensemble's one-step
/// forecast, and predict_ahead(n) extends it by the linear trend of the
/// recent window.  Trend extrapolation (not iterated ensemble feedback) is
/// deliberate: the ensemble's members are one-step predictors whose clone()
/// returns a *fresh* instance, so feeding predictions back would both
/// mutate state and flatten ramps — exactly the signal a proactive scaler
/// needs to see.
class SeriesForecaster {
 public:
  explicit SeriesForecaster(std::size_t history = 256,
                            std::size_t trend_window = 8);

  void observe(sim::SimTime time, double value);
  /// Ensemble one-step-ahead forecast (0 before any observation).
  [[nodiscard]] double predict_next() const;
  /// Trend-extrapolated forecast `steps` observations ahead:
  /// predict_next() + slope * steps, floored at 0 (demand series are
  /// non-negative).  steps == 0 is predict_next().
  [[nodiscard]] double predict_ahead(std::size_t steps) const;
  /// Least-squares slope (per observation) over the recent trend window.
  [[nodiscard]] double trend() const;
  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] std::string best_member() const;

 private:
  TimeSeries series_;
  std::size_t trend_window_;
  std::unique_ptr<AdaptiveForecaster> ensemble_;
};

}  // namespace pragma::monitor
