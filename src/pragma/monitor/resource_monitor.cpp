#include "pragma/monitor/resource_monitor.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace pragma::monitor {

ResourceMonitor::ResourceMonitor(sim::Simulator& simulator,
                                 const grid::Cluster& cluster,
                                 ResourceMonitorConfig config, util::Rng rng)
    : simulator_(simulator), cluster_(cluster), config_(config), rng_(rng) {
  per_node_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i)
    per_node_.emplace_back(config_.history);
}

void ResourceMonitor::start() {
  if (running_) return;
  running_ = true;
  tick_ = simulator_.schedule_periodic(config_.period_s,
                                       [this] { sample_now(); },
                                       /*first_delay=*/0.0);
}

void ResourceMonitor::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(tick_);
}

double ResourceMonitor::noisy(double value) {
  if (config_.noise <= 0.0) return value;
  return std::max(0.0, value * (1.0 + rng_.normal(0.0, config_.noise)));
}

void ResourceMonitor::set_reachability(
    std::function<bool(grid::NodeId)> reachable) {
  reachable_ = std::move(reachable);
}

void ResourceMonitor::sample_now() {
  const sim::SimTime now = simulator_.now();
  for (grid::NodeId id = 0; id < per_node_.size(); ++id) {
    if (reachable_ && !reachable_(id)) continue;  // probe times out
    const grid::Node& node = cluster_.node(id);
    const grid::Link& link = cluster_.uplink(id);
    PerNode& series = per_node_[id];

    const double cpu = noisy(node.effective_gflops());
    const double mem = noisy(node.available_memory_mib());
    const double bw =
        noisy(link.effective_bytes_per_s() * 8.0 / 1.0e6);  // -> Mb/s

    series.cpu.series.append(now, std::max(cpu, 0.0));
    series.cpu.forecaster->observe(std::max(cpu, 0.0));
    series.memory.series.append(now, mem);
    series.memory.forecaster->observe(mem);
    series.bandwidth.series.append(now, bw);
    series.bandwidth.forecaster->observe(bw);
  }
  ++sweeps_;
}

const ResourceMonitor::PerResource& ResourceMonitor::resource_of(
    grid::NodeId node, Resource resource) const {
  const PerNode& per_node = per_node_.at(node);
  switch (resource) {
    case Resource::kCpu:
      return per_node.cpu;
    case Resource::kMemory:
      return per_node.memory;
    case Resource::kBandwidth:
      return per_node.bandwidth;
  }
  return per_node.cpu;  // unreachable
}

NodeReading ResourceMonitor::current(grid::NodeId node) const {
  const PerNode& per_node = per_node_.at(node);
  NodeReading reading;
  reading.cpu_gflops = per_node.cpu.series.last_value(0.0);
  reading.memory_mib = per_node.memory.series.last_value(0.0);
  reading.bandwidth_mbps = per_node.bandwidth.series.last_value(0.0);
  return reading;
}

double ResourceMonitor::last_sample_time(grid::NodeId node,
                                         Resource resource) const {
  const TimeSeries& series = resource_of(node, resource).series;
  if (series.empty()) return -std::numeric_limits<double>::infinity();
  return series.back().time;
}

double ResourceMonitor::forecast(grid::NodeId node, Resource resource) const {
  return resource_of(node, resource).forecaster->predict();
}

const TimeSeries& ResourceMonitor::series(grid::NodeId node,
                                          Resource resource) const {
  return resource_of(node, resource).series;
}

std::string ResourceMonitor::forecaster_choice(grid::NodeId node,
                                               Resource resource) const {
  return resource_of(node, resource).forecaster->best_member();
}

}  // namespace pragma::monitor
