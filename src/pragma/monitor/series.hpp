// Timestamped measurement series with bounded history.
//
// Sensors append (time, value) samples; forecasters and the capacity
// calculator read recent history.  History is bounded so that long runs do
// not grow memory without bound (NWS similarly keeps rolling histories).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "pragma/sim/simulator.hpp"

namespace pragma::monitor {

struct Sample {
  sim::SimTime time = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_samples = 4096);

  void append(sim::SimTime time, double value);
  void clear();

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }
  [[nodiscard]] const Sample& at(std::size_t i) const { return samples_[i]; }

  /// Most recent value, or `fallback` when empty.
  [[nodiscard]] double last_value(double fallback = 0.0) const;

  /// Values of the most recent `n` samples (or all, if fewer), oldest first.
  [[nodiscard]] std::vector<double> recent_values(std::size_t n) const;

  /// All retained values, oldest first.
  [[nodiscard]] std::vector<double> values() const;

 private:
  std::size_t max_samples_;
  std::deque<Sample> samples_;
};

}  // namespace pragma::monitor
