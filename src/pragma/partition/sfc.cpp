#include "pragma/partition/sfc.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace pragma::partition {

namespace {
/// Spread the low 21 bits of v so that bit i lands at position 3i.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}
}  // namespace

std::uint64_t morton_key(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                         int bits) {
  (void)bits;
  // z varies fastest along the curve (x in the highest interleaved bits),
  // matching the row-major storage convention of the grid levels.
  return spread3(z) | (spread3(y) << 1) | (spread3(x) << 2);
}

std::uint64_t hilbert_key(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                          int bits) {
  // Skilling's algorithm: convert coordinates to the "transposed" Hilbert
  // index in place, then interleave.
  std::uint32_t X[3] = {x, y, z};
  const std::uint32_t M = 1u << (bits - 1);

  // Inverse undo excess work.
  for (std::uint32_t Q = M; Q > 1; Q >>= 1) {
    const std::uint32_t P = Q - 1;
    for (int i = 0; i < 3; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;  // invert
      } else {
        const std::uint32_t t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) X[i] ^= X[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t Q = M; Q > 1; Q >>= 1)
    if (X[2] & Q) t ^= Q - 1;
  for (int i = 0; i < 3; ++i) X[i] ^= t;

  // Interleave: bit b of the key takes from X[axis] high-to-low.
  std::uint64_t key = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int axis = 0; axis < 3; ++axis) {
      key <<= 1;
      key |= (X[axis] >> b) & 1u;
    }
  return key;
}

int curve_bits(amr::IntVec3 dims) {
  const int m = std::max({dims.x, dims.y, dims.z});
  int bits = 1;
  while ((1 << bits) < m) ++bits;
  return bits;
}

namespace {
struct CurveCacheKey {
  amr::IntVec3 dims;
  CurveKind kind;
  bool operator==(const CurveCacheKey&) const = default;
};

struct CurveCacheKeyHash {
  std::size_t operator()(const CurveCacheKey& key) const {
    std::uint64_t h = static_cast<std::uint64_t>(key.dims.x);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.dims.y);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.dims.z);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.kind);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

std::vector<std::uint32_t> compute_curve_order(amr::IntVec3 dims,
                                               CurveKind kind) {
  const int bits = curve_bits(dims);
  const std::size_t count = static_cast<std::size_t>(dims.x) *
                            static_cast<std::size_t>(dims.y) *
                            static_cast<std::size_t>(dims.z);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed;
  keyed.reserve(count);
  for (std::uint32_t z = 0; z < static_cast<std::uint32_t>(dims.z); ++z)
    for (std::uint32_t y = 0; y < static_cast<std::uint32_t>(dims.y); ++y)
      for (std::uint32_t x = 0; x < static_cast<std::uint32_t>(dims.x); ++x) {
        const std::uint64_t sfc_key = kind == CurveKind::kMorton
                                      ? morton_key(x, y, z, bits)
                                      : hilbert_key(x, y, z, bits);
        const std::uint32_t linear =
            x + static_cast<std::uint32_t>(dims.x) *
                    (y + static_cast<std::uint32_t>(dims.y) * z);
        keyed.emplace_back(sfc_key, linear);
      }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::uint32_t> order;
  order.reserve(count);
  for (const auto& [k, linear] : keyed) order.push_back(linear);
  return order;
}
}  // namespace

std::shared_ptr<const std::vector<std::uint32_t>> curve_order_shared(
    amr::IntVec3 dims, CurveKind kind) {
  if (dims.x <= 0 || dims.y <= 0 || dims.z <= 0)
    throw std::invalid_argument("curve_order: empty lattice");

  using OrderPtr = std::shared_ptr<const std::vector<std::uint32_t>>;
  static std::mutex mutex;
  static std::unordered_map<CurveCacheKey, OrderPtr, CurveCacheKeyHash> cache;

  const CurveCacheKey key{dims, kind};
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Compute outside the lock; a concurrent builder of the same key loses
  // the try_emplace race and its copy is dropped.
  auto order = std::make_shared<const std::vector<std::uint32_t>>(
      compute_curve_order(dims, kind));
  std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(key, std::move(order)).first->second;
}

std::vector<std::uint32_t> curve_order(amr::IntVec3 dims, CurveKind kind) {
  return *curve_order_shared(dims, kind);
}

std::shared_ptr<const std::vector<std::uint32_t>> curve_rank_shared(
    amr::IntVec3 dims, CurveKind kind) {
  using RankPtr = std::shared_ptr<const std::vector<std::uint32_t>>;
  static std::mutex mutex;
  static std::unordered_map<CurveCacheKey, RankPtr, CurveCacheKeyHash> cache;

  const CurveCacheKey key{dims, kind};
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  const auto order = curve_order_shared(dims, kind);
  std::vector<std::uint32_t> rank(order->size());
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(order->size());
       ++r)
    rank[(*order)[r]] = r;
  auto inverse =
      std::make_shared<const std::vector<std::uint32_t>>(std::move(rank));
  std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(key, std::move(inverse)).first->second;
}

}  // namespace pragma::partition
