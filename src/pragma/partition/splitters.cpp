#include "pragma/partition/splitters.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pragma::partition {

namespace {
void validate(std::span<const double> targets) {
  if (targets.empty())
    throw std::invalid_argument("splitter: no processors");
  for (double t : targets)
    if (t < 0.0) throw std::invalid_argument("splitter: negative target");
}

double total_of(std::span<const double> weights) {
  return std::accumulate(weights.begin(), weights.end(), 0.0);
}

/// Greedy chunk extension with the crossing-element tie-break: extend the
/// chunk starting at `j` as far as `goal` allows, then keep the crossing
/// element on whichever side is closer to the goal.  Binary search over the
/// prefix sums — the kernel shared by greedy_split and dissection_split.
std::size_t greedy_cut(const PrefixSums& sums, std::size_t j, std::size_t hi,
                       double goal) {
  std::size_t cut = sums.last_within(j, hi, goal);
  if (cut < hi) {
    const double load = sums.sum(j, cut);
    const double w = sums.sum(cut, cut + 1);
    if (!(goal - load < load + w - goal)) ++cut;
  }
  return cut;
}
}  // namespace

std::vector<double> chunk_loads(const PrefixSums& sums, const Breaks& breaks) {
  std::vector<double> loads(breaks.size() - 1, 0.0);
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i)
    loads[i] = sums.sum(breaks[i], breaks[i + 1]);
  return loads;
}

std::vector<double> chunk_loads(std::span<const double> weights,
                                const Breaks& breaks) {
  return chunk_loads(PrefixSums(weights), breaks);
}

double bottleneck(std::span<const double> weights, const Breaks& breaks,
                  std::span<const double> targets) {
  const double total = total_of(weights);
  if (total <= 0.0) return 1.0;
  const std::vector<double> loads = chunk_loads(weights, breaks);
  double worst = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double share = targets[i] > 0.0
                             ? loads[i] / (targets[i] * total)
                             : (loads[i] > 0.0
                                    ? std::numeric_limits<double>::infinity()
                                    : 0.0);
    worst = std::max(worst, share);
  }
  return worst;
}

Breaks greedy_split(const PrefixSums& sums, std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  const std::size_t n = sums.size();
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  // Goals are recomputed from the *remaining* work and target mass so that
  // per-chunk rounding errors do not accumulate onto the final chunk.
  double remaining_target = tsum;

  Breaks breaks(p + 1, n);
  breaks[0] = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < p; ++i) {
    const double remaining_work = sums.total() - sums.prefix(j);
    const double goal = remaining_target > 0.0
                            ? remaining_work * (targets[i] / remaining_target)
                            : 0.0;
    j = greedy_cut(sums, j, n, goal);
    breaks[i + 1] = j;
    remaining_target -= targets[i];
  }
  return breaks;
}

Breaks greedy_split(std::span<const double> weights,
                    std::span<const double> targets) {
  return greedy_split(PrefixSums(weights), targets);
}

Breaks plain_greedy_split(const PrefixSums& sums,
                          std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  const std::size_t n = sums.size();
  const double total = sums.total();
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  Breaks breaks(p + 1, n);
  breaks[0] = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < p; ++i) {
    // Textbook first-fit: fill until the goal is reached, always taking
    // the crossing element (surplus <= one element per chunk, and the
    // accumulated surplus starves the trailing chunks).
    const double goal = total * (targets[i] / tsum);
    j = sums.first_reaching(j, goal);
    breaks[i + 1] = j;
  }
  return breaks;
}

Breaks plain_greedy_split(std::span<const double> weights,
                          std::span<const double> targets) {
  return plain_greedy_split(PrefixSums(weights), targets);
}

namespace {
Breaks optimal_split_impl(const PrefixSums& sums,
                          std::span<const double> targets, double wmax) {
  const std::size_t p = targets.size();
  const std::size_t n = sums.size();
  const double total = sums.total();
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  std::vector<double> goals(p);
  for (std::size_t i = 0; i < p; ++i) goals[i] = targets[i] / tsum;

  // Degenerate target vectors (all zero, e.g. every node reported dead)
  // have no feasible bottleneck at any scale; fall back to the greedy
  // splitter's behavior instead of searching forever.
  double goal_max = 0.0;
  for (double g : goals) goal_max = std::max(goal_max, g);
  if (goal_max <= 0.0) return greedy_split(sums, targets);

  // Feasibility probe: can the sequence be cut so that chunk i holds at
  // most lambda * goals[i] * total?  Greedy left-to-right packing is exact
  // for contiguous chunks with ordered targets; each chunk extent is one
  // binary search over the prefix sums, so a probe costs O(p log n).
  auto probe = [&](double lambda, Breaks* out) {
    Breaks breaks(p + 1, n);
    breaks[0] = 0;
    std::size_t j = 0;
    for (std::size_t i = 0; i < p; ++i) {
      const double cap = lambda * goals[i] * total;
      j = sums.last_within(j, cap);
      breaks[i + 1] = j;
    }
    const bool feasible = j == n;
    if (feasible && out) *out = breaks;
    return feasible;
  };

  // Lower bound: perfect proportionality; upper bound: everything feasible.
  double lo = 1.0;
  double hi = 1.0;
  if (total > 0.0) {
    // A chunk must hold its largest single element.
    double min_goal = std::numeric_limits<double>::infinity();
    for (double g : goals)
      if (g > 0.0) min_goal = std::min(min_goal, g);
    hi = std::max(2.0, (wmax / std::max(1e-300, min_goal * total)) + 1.0) *
         static_cast<double>(p);
  }
  for (int doubling = 0; !probe(hi, nullptr); ++doubling) {
    if (doubling > 200) return greedy_split(sums, targets);
    hi *= 2.0;
  }

  Breaks best;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid, &best)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (best.empty()) probe(hi, &best);
  return best;
}
}  // namespace

Breaks optimal_split(const PrefixSums& sums, std::span<const double> targets) {
  validate(targets);
  double wmax = 0.0;
  for (std::size_t i = 0; i < sums.size(); ++i)
    wmax = std::max(wmax, sums.sum(i, i + 1));
  return optimal_split_impl(sums, targets, wmax);
}

Breaks optimal_split(std::span<const double> weights,
                     std::span<const double> targets) {
  validate(targets);
  // Take wmax from the raw weights so the search bounds match the
  // reference scan kernel bit for bit.
  double wmax = 0.0;
  for (double w : weights) wmax = std::max(wmax, w);
  return optimal_split_impl(PrefixSums(weights), targets, wmax);
}

namespace {
void dissect(const PrefixSums& sums, std::size_t seq_lo, std::size_t seq_hi,
             std::span<const double> targets, std::size_t proc_lo,
             std::size_t proc_hi, Breaks& breaks) {
  const std::size_t nproc = proc_hi - proc_lo;
  if (nproc <= 1) return;
  const std::size_t proc_mid = proc_lo + (nproc + 1) / 2;

  double left_target = 0.0;
  double all_target = 0.0;
  for (std::size_t i = proc_lo; i < proc_hi; ++i) {
    all_target += targets[i];
    if (i < proc_mid) left_target += targets[i];
  }
  const double frac = all_target > 0.0 ? left_target / all_target : 0.5;

  const double goal = sums.sum(seq_lo, seq_hi) * frac;
  const std::size_t cut = greedy_cut(sums, seq_lo, seq_hi, goal);
  breaks[proc_mid] = cut;
  dissect(sums, seq_lo, cut, targets, proc_lo, proc_mid, breaks);
  dissect(sums, cut, seq_hi, targets, proc_mid, proc_hi, breaks);
}
}  // namespace

Breaks dissection_split(const PrefixSums& sums,
                        std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  Breaks breaks(p + 1, 0);
  breaks[p] = sums.size();
  dissect(sums, 0, sums.size(), targets, 0, p, breaks);
  return breaks;
}

Breaks dissection_split(std::span<const double> weights,
                        std::span<const double> targets) {
  return dissection_split(PrefixSums(weights), targets);
}

std::vector<double> equal_targets(std::size_t p) {
  return std::vector<double>(p, 1.0 / static_cast<double>(p));
}

// --- Reference scan kernels -----------------------------------------------
// The seed implementations, unchanged: O(n) element-by-element rescans.

std::vector<double> reference_chunk_loads(std::span<const double> weights,
                                          const Breaks& breaks) {
  std::vector<double> loads(breaks.size() - 1, 0.0);
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i)
    for (std::size_t j = breaks[i]; j < breaks[i + 1]; ++j)
      loads[i] += weights[j];
  return loads;
}

Breaks reference_greedy_split(std::span<const double> weights,
                              std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  const std::size_t n = weights.size();
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  double remaining_work = total_of(weights);
  double remaining_target = tsum;

  Breaks breaks(p + 1, n);
  breaks[0] = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < p; ++i) {
    const double goal = remaining_target > 0.0
                            ? remaining_work * (targets[i] / remaining_target)
                            : 0.0;
    double load = 0.0;
    while (j < n) {
      const double w = weights[j];
      // The crossing element goes to whichever side is closer to the goal.
      if (load + w > goal) {
        if (goal - load < load + w - goal) break;
        load += w;
        ++j;
        break;
      }
      load += w;
      ++j;
    }
    breaks[i + 1] = j;
    remaining_work -= load;
    remaining_target -= targets[i];
  }
  return breaks;
}

Breaks reference_plain_greedy_split(std::span<const double> weights,
                                    std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  const std::size_t n = weights.size();
  const double total = total_of(weights);
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  Breaks breaks(p + 1, n);
  breaks[0] = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < p; ++i) {
    const double goal = total * (targets[i] / tsum);
    double load = 0.0;
    while (j < n && load < goal) {
      load += weights[j];
      ++j;
    }
    breaks[i + 1] = j;
  }
  return breaks;
}

Breaks reference_optimal_split(std::span<const double> weights,
                               std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  const std::size_t n = weights.size();
  const double total = total_of(weights);
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;

  std::vector<double> goals(p);
  for (std::size_t i = 0; i < p; ++i) goals[i] = targets[i] / tsum;

  double goal_max = 0.0;
  for (double g : goals) goal_max = std::max(goal_max, g);
  if (goal_max <= 0.0) return reference_greedy_split(weights, targets);

  double wmax = 0.0;
  for (double w : weights) wmax = std::max(wmax, w);

  auto probe = [&](double lambda, Breaks* out) {
    Breaks breaks(p + 1, n);
    breaks[0] = 0;
    std::size_t j = 0;
    for (std::size_t i = 0; i < p; ++i) {
      const double cap = lambda * goals[i] * total;
      double load = 0.0;
      while (j < n && load + weights[j] <= cap) {
        load += weights[j];
        ++j;
      }
      breaks[i + 1] = j;
    }
    const bool feasible = j == n;
    if (feasible && out) *out = breaks;
    return feasible;
  };

  double lo = 1.0;
  double hi = 1.0;
  if (total > 0.0) {
    double min_goal = std::numeric_limits<double>::infinity();
    for (double g : goals)
      if (g > 0.0) min_goal = std::min(min_goal, g);
    hi = std::max(2.0, (wmax / std::max(1e-300, min_goal * total)) + 1.0) *
         static_cast<double>(p);
  }
  for (int doubling = 0; !probe(hi, nullptr); ++doubling) {
    if (doubling > 200) return reference_greedy_split(weights, targets);
    hi *= 2.0;
  }

  Breaks best;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid, &best)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (best.empty()) probe(hi, &best);
  return best;
}

namespace {
void reference_dissect(std::span<const double> weights, std::size_t seq_lo,
                       std::size_t seq_hi, std::span<const double> targets,
                       std::size_t proc_lo, std::size_t proc_hi,
                       Breaks& breaks) {
  const std::size_t nproc = proc_hi - proc_lo;
  if (nproc <= 1) return;
  const std::size_t proc_mid = proc_lo + (nproc + 1) / 2;

  double left_target = 0.0;
  double all_target = 0.0;
  for (std::size_t i = proc_lo; i < proc_hi; ++i) {
    all_target += targets[i];
    if (i < proc_mid) left_target += targets[i];
  }
  const double frac = all_target > 0.0 ? left_target / all_target : 0.5;

  double total = 0.0;
  for (std::size_t j = seq_lo; j < seq_hi; ++j) total += weights[j];
  const double goal = total * frac;

  std::size_t cut = seq_lo;
  double load = 0.0;
  while (cut < seq_hi) {
    const double w = weights[cut];
    if (load + w > goal) {
      if (goal - load < load + w - goal) break;
      ++cut;
      break;
    }
    load += w;
    ++cut;
  }
  breaks[proc_mid] = cut;
  reference_dissect(weights, seq_lo, cut, targets, proc_lo, proc_mid, breaks);
  reference_dissect(weights, cut, seq_hi, targets, proc_mid, proc_hi, breaks);
}
}  // namespace

Breaks reference_dissection_split(std::span<const double> weights,
                                  std::span<const double> targets) {
  validate(targets);
  const std::size_t p = targets.size();
  Breaks breaks(p + 1, 0);
  breaks[p] = weights.size();
  reference_dissect(weights, 0, weights.size(), targets, 0, p, breaks);
  return breaks;
}

}  // namespace pragma::partition
