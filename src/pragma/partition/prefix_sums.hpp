// Shared prefix-sum view of a weight sequence.
//
// Every splitter reduces to two primitives over the 1-D work sequence:
// range sums ("how much work between two cuts") and monotone cut searches
// ("how far can this chunk extend before crossing its goal").  With the
// inclusive prefix sums materialized once, range sums are O(1) and cut
// searches are binary searches over the (non-decreasing, for non-negative
// weights) prefix array — turning the O(n)-rescan splitter kernels into
// O(p log n) ones.  The view owns only the prefix array, so it can be
// cached next to the sequence it summarizes (see WorkGrid::prefix_sums()).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pragma::partition {

class PrefixSums {
 public:
  PrefixSums() = default;
  /// Build the inclusive prefix sums of `weights` (left-to-right fold, the
  /// same association as std::accumulate so totals match the scan kernels
  /// bit for bit).  The binary searches assume non-negative weights.
  explicit PrefixSums(std::span<const double> weights);

  /// Number of elements summarized.
  [[nodiscard]] std::size_t size() const {
    return pre_.empty() ? 0 : pre_.size() - 1;
  }
  /// Sum of the first `i` elements (prefix(0) == 0, prefix(size()) == total).
  [[nodiscard]] double prefix(std::size_t i) const { return pre_[i]; }
  /// Sum over [lo, hi).
  [[nodiscard]] double sum(std::size_t lo, std::size_t hi) const {
    return pre_[hi] - pre_[lo];
  }
  /// Total over the whole sequence.
  [[nodiscard]] double total() const { return pre_.empty() ? 0.0 : pre_.back(); }

  /// Largest k in [lo, hi] with sum(lo, k) <= bound (clamped to lo when
  /// even the empty range exceeds a negative bound).
  [[nodiscard]] std::size_t last_within(std::size_t lo, std::size_t hi,
                                        double bound) const;
  [[nodiscard]] std::size_t last_within(std::size_t lo, double bound) const {
    return last_within(lo, size(), bound);
  }

  /// Re-fold the sums from element `from` to the end after `weights`
  /// changed in [from, size()).  `weights` must be the full sequence this
  /// view summarizes (same size).  The fold repeats the constructor's
  /// left-to-right association starting from the retained prefix(from), so
  /// the result is bitwise-identical to rebuilding from scratch whenever
  /// the untouched prefix is.  O(size - from), one streaming pass.
  void update_suffix(std::size_t from, std::span<const double> weights);

  /// Smallest k in [lo, hi] with sum(lo, k) >= bound; hi if none.
  [[nodiscard]] std::size_t first_reaching(std::size_t lo, std::size_t hi,
                                           double bound) const;
  [[nodiscard]] std::size_t first_reaching(std::size_t lo,
                                           double bound) const {
    return first_reaching(lo, size(), bound);
  }

 private:
  /// pre_[i] = sum of weights[0..i); size() + 1 entries (empty when
  /// default-constructed).
  std::vector<double> pre_;
};

}  // namespace pragma::partition
