// Space-filling curves: Morton (Z-order) and Hilbert orderings of a 3-D
// lattice.
//
// All of the paper's partitioners are built on inverse space-filling
// partitioning (ISP): map the 3-D domain onto a 1-D sequence via an SFC,
// then divide the sequence.  Hilbert ordering preserves locality better
// than Morton; the plain "SFC" partitioner in Table 4 uses Morton while the
// ISP family uses Hilbert.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pragma/amr/box.hpp"

namespace pragma::partition {

/// Morton (Z-order) key: interleave the low `bits` bits of x, y, z.
[[nodiscard]] std::uint64_t morton_key(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z, int bits);

/// Hilbert key on a 2^bits cube (Skilling's transpose algorithm).
[[nodiscard]] std::uint64_t hilbert_key(std::uint32_t x, std::uint32_t y,
                                        std::uint32_t z, int bits);

enum class CurveKind { kMorton, kHilbert };

/// Visit order of an X×Y×Z lattice under an SFC: order[rank] = linear cell
/// index (x + X*(y + Y*z)).  The lattice is embedded in the enclosing
/// power-of-two cube; cells outside the lattice are skipped, which keeps
/// aligned power-of-two blocks contiguous in the order.
///
/// Orders are pure functions of (dims, kind) and are requested once per
/// WorkGrid construction — hundreds of times per trace replay — so they are
/// memoized in a mutex-guarded hash map and shared: every caller with the
/// same key receives the same immutable vector, with no per-hit copy.
[[nodiscard]] std::shared_ptr<const std::vector<std::uint32_t>>
curve_order_shared(amr::IntVec3 dims, CurveKind kind);

/// Copying convenience wrapper around curve_order_shared().
[[nodiscard]] std::vector<std::uint32_t> curve_order(amr::IntVec3 dims,
                                                     CurveKind kind);

/// Inverse of curve_order_shared(): rank[linear cell index] = position of
/// that cell along the curve.  Memoized and shared exactly like the forward
/// order; the incremental WorkGrid path uses it to map touched lattice
/// cells back into the 1-D work sequence without a scan.
[[nodiscard]] std::shared_ptr<const std::vector<std::uint32_t>>
curve_rank_shared(amr::IntVec3 dims, CurveKind kind);

/// Smallest b with 2^b >= max extent.
[[nodiscard]] int curve_bits(amr::IntVec3 dims);

}  // namespace pragma::partition
