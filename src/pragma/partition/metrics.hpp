// The five-component PAC quality metric (Section 4.1).
//
// "The proposed metric for characterizing the quality of a PAC [tuple
//  <partitioner, application, computer system>] for the adaptive SAMR
//  meta-partitioner include Communication requirements, Load imbalance,
//  Amount of data migration, Partitioning time, and Partitioning induced
//  overheads."
#pragma once

#include <string>
#include <vector>

#include "pragma/partition/partitioner.hpp"

namespace pragma::partition {

struct PacMetrics {
  /// (1) Communication: total inter-processor ghost-exchange volume per
  /// coarse step (cell-faces, MIT-weighted across levels).
  double communication = 0.0;
  /// (2) Load imbalance: max_i(load_i / target_i) / total - 1, i.e. how far
  /// the most overloaded processor is above its proportional share
  /// (0 = perfectly proportional).  Reported as a fraction.
  double load_imbalance = 0.0;
  /// (3) Data migration: storage volume (cells, all levels) that changed
  /// owner relative to the previous assignment, as a fraction of the total
  /// storage.  0 when there is no previous assignment.
  double data_migration = 0.0;
  /// (4) Partitioning time in seconds (wall clock of the algorithm).
  double partition_time = 0.0;
  /// (5) Partitioning-induced overheads: fragmentation of ownership —
  /// the number of ownership fragments (maximal same-owner SFC runs) per
  /// processor above the ideal single fragment.
  double overhead = 0.0;
};

/// Per-processor work loads of an assignment.  Throws std::invalid_argument
/// when the owner map does not cover the grid or an owner is out of range.
[[nodiscard]] std::vector<double> processor_loads(const WorkGrid& grid,
                                                  const OwnerMap& owners);

/// Per-processor storage (cells across levels).  Validates like
/// processor_loads.
[[nodiscard]] std::vector<double> processor_storage(const WorkGrid& grid,
                                                    const OwnerMap& owners);

/// Total inter-processor communication volume (MIT-weighted ghost faces).
/// `threads` > 1 splits the face sweep over z-slabs with per-thread
/// partials reduced in slab order.
[[nodiscard]] double communication_volume(const WorkGrid& grid,
                                          const OwnerMap& owners,
                                          int threads = 1);

/// Storage fraction that changed owner between two assignments over the
/// same lattice.
[[nodiscard]] double migration_fraction(const WorkGrid& grid,
                                        const OwnerMap& previous,
                                        const OwnerMap& current);

/// Evaluate the full 5-component metric.  `previous` may be null.  Throws
/// std::invalid_argument when the owner map does not cover the grid or
/// targets.size() != nprocs.  `threads` parallelizes the communication
/// sweep (see communication_volume).
[[nodiscard]] PacMetrics evaluate_pac(const WorkGrid& grid,
                                      const PartitionResult& result,
                                      std::span<const double> targets,
                                      const OwnerMap* previous = nullptr,
                                      int threads = 1);

}  // namespace pragma::partition
