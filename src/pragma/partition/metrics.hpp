// The five-component PAC quality metric (Section 4.1).
//
// "The proposed metric for characterizing the quality of a PAC [tuple
//  <partitioner, application, computer system>] for the adaptive SAMR
//  meta-partitioner include Communication requirements, Load imbalance,
//  Amount of data migration, Partitioning time, and Partitioning induced
//  overheads."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pragma/partition/partitioner.hpp"

namespace pragma::partition {

struct PacMetrics {
  /// (1) Communication: total inter-processor ghost-exchange volume per
  /// coarse step (cell-faces, MIT-weighted across levels).
  double communication = 0.0;
  /// (2) Load imbalance: max_i(load_i / target_i) / total - 1, i.e. how far
  /// the most overloaded processor is above its proportional share
  /// (0 = perfectly proportional).  Reported as a fraction.
  double load_imbalance = 0.0;
  /// (3) Data migration: storage volume (cells, all levels) that changed
  /// owner relative to the previous assignment, as a fraction of the total
  /// storage.  0 when there is no previous assignment.
  double data_migration = 0.0;
  /// (4) Partitioning time in seconds (wall clock of the algorithm).
  double partition_time = 0.0;
  /// (5) Partitioning-induced overheads: fragmentation of ownership —
  /// the number of ownership fragments (maximal same-owner SFC runs) per
  /// processor above the ideal single fragment.
  double overhead = 0.0;
};

/// Per-processor work loads of an assignment.  Throws std::invalid_argument
/// when the owner map does not cover the grid or an owner is out of range.
[[nodiscard]] std::vector<double> processor_loads(const WorkGrid& grid,
                                                  const OwnerMap& owners);

/// Per-processor storage (cells across levels).  Validates like
/// processor_loads.
[[nodiscard]] std::vector<double> processor_storage(const WorkGrid& grid,
                                                    const OwnerMap& owners);

/// Total inter-processor communication volume (MIT-weighted ghost faces).
/// `threads` > 1 splits the face sweep over z-slabs with per-thread
/// partials reduced in slab order.  The sweep is branchless and
/// table-driven (per-face cost looked up by the shared level mask); its
/// result is bitwise-identical to reference_communication_volume.
[[nodiscard]] double communication_volume(const WorkGrid& grid,
                                          const OwnerMap& owners,
                                          int threads = 1);

/// Bitwise equivalence oracle for communication_volume: the pre-SIMD
/// serial sweep with the per-face scalar level fold.
[[nodiscard]] double reference_communication_volume(const WorkGrid& grid,
                                                    const OwnerMap& owners);

/// Incrementally maintained communication volume.  A trace replay's owner
/// map and level masks change only near regrid activity, so instead of
/// re-sweeping every lattice face the tracker stores the cost of each face
/// and, on update, recomputes just the faces incident to cells whose owner
/// or level mask changed.  All face costs are integer-valued (powers of the
/// refinement ratio times the squared grain edge), so the subtract/re-add
/// bookkeeping is exact and total() always equals the full sweep bit for
/// bit.  reset() primes the tracker with a slab-order fold matching the
/// serial sweep's association.
class IncrementalCommVolume {
 public:
  IncrementalCommVolume() = default;

  /// Prime from scratch over `grid`/`owners`.  total() afterwards is
  /// bitwise-identical to communication_volume(grid, owners, 1).
  void reset(const WorkGrid& grid, const OwnerMap& owners);

  /// Refresh after owner/level changes and return total().  Recomputes only
  /// the faces incident to changed cells; falls back to reset() when the
  /// lattice shape, grain, or level structure changed.  Throws
  /// std::invalid_argument when the owner map does not cover the grid.
  double update(const WorkGrid& grid, const OwnerMap& owners);

  /// Current communication volume (0 until primed).
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] bool primed() const { return !face_.empty(); }

 private:
  [[nodiscard]] bool shape_matches(const WorkGrid& grid) const;

  amr::IntVec3 dims_{0, 0, 0};
  int grain_ = 0;
  int num_levels_ = 0;
  int ratio_ = 0;
  std::vector<int> prev_owner_;
  std::vector<std::uint32_t> prev_levels_;
  /// Cost of the +x, +y, +z faces of each cell (3 per cell; 0 past the
  /// lattice boundary).
  std::vector<double> face_;
  /// Shared-level-mask -> face cost (see communication_volume).
  std::vector<double> table_;
  double total_ = 0.0;
};

/// Storage fraction that changed owner between two assignments over the
/// same lattice.
[[nodiscard]] double migration_fraction(const WorkGrid& grid,
                                        const OwnerMap& previous,
                                        const OwnerMap& current);

/// Evaluate the full 5-component metric.  `previous` may be null.  Throws
/// std::invalid_argument when the owner map does not cover the grid or
/// targets.size() != nprocs.  `threads` parallelizes the communication
/// sweep (see communication_volume).  When `comm_tracker` is non-null the
/// communication component comes from the tracker's incremental update
/// (exact — see IncrementalCommVolume) instead of a full face sweep.
[[nodiscard]] PacMetrics evaluate_pac(const WorkGrid& grid,
                                      const PartitionResult& result,
                                      std::span<const double> targets,
                                      const OwnerMap* previous = nullptr,
                                      int threads = 1,
                                      IncrementalCommVolume* comm_tracker =
                                          nullptr);

}  // namespace pragma::partition
