// The SAMR partitioner suite (Section 4.4).
//
// "Available partitioners include Space-Filling Curve based Partitioner
//  (SFC), Variable Grain Geometric Multilevel Inverse Space-Filling Curve
//  Partitioner (G-MISP), [G-MISP] with Sequence Partitioning (G-MISP+SP),
//  p-Way Binary Dissection Inverse Space-Filling Curve Partitioner
//  (pBD-ISP), and Pure Sequence Partitioner with Inverse Space-Filling
//  Curve (SP-ISP)."  Table 2 additionally lists plain ISP.
//
// All are domain-based: they divide the level-0 footprint (as a WorkGrid of
// grain cells) among processors; refined levels follow their footprint.
// Every partitioner accepts per-processor target fractions, which is how
// the system-sensitive (capacity-weighted) mode of Fig. 4 is realized.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pragma/partition/splitters.hpp"
#include "pragma/partition/workgrid.hpp"

namespace pragma::partition {

/// owner[c] = processor assigned to grain cell c (linear index).
struct OwnerMap {
  std::vector<int> owner;
  int nprocs = 0;
  [[nodiscard]] std::size_t size() const { return owner.size(); }
};

struct PartitionResult {
  OwnerMap owners;
  std::string partitioner;
  /// Wall-clock seconds spent inside the partitioning algorithm.
  double partition_seconds = 0.0;
  /// Number of contiguous SFC chunks produced (fragmentation proxy).
  std::size_t chunk_count = 0;
  /// Number of variable-grain blocks considered (G-MISP family), or grain
  /// cells for flat partitioners.
  std::size_t unit_count = 0;
};

/// Configuration shared by the suite.
struct PartitionerOptions {
  /// Grain (level-0 cells per grain-cell edge) used when rasterizing.
  int grain = 4;
  /// Coarse starting block edge (in grain cells) for the G-MISP family.
  int gmisp_start_block = 8;
  /// A G-MISP block splits while its work exceeds this multiple of the mean
  /// per-processor target.
  double gmisp_split_factor = 0.25;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Partition `grid` so processor i receives ~targets[i] of the work.
  [[nodiscard]] virtual PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// The curve this partitioner orders the domain with.
  [[nodiscard]] virtual CurveKind curve() const { return CurveKind::kHilbert; }
  /// The grain (level-0 cells per grain-cell edge) this partitioner is
  /// designed for: the plain SFC partitioner works at patch-like coarse
  /// granularity, the ISP family at fine granularity.  Callers should build
  /// the WorkGrid with this grain.
  [[nodiscard]] virtual int preferred_grain() const { return 2; }
};

/// Plain SFC partitioner: Morton order, greedy chunking (Table 4 "SFC").
class SfcPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const override;
  [[nodiscard]] std::string name() const override { return "SFC"; }
  [[nodiscard]] CurveKind curve() const override { return CurveKind::kMorton; }
  [[nodiscard]] int preferred_grain() const override { return 4; }
};

/// ISP: Hilbert order at fixed fine grain, greedy chunking.
class IspPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const override;
  [[nodiscard]] std::string name() const override { return "ISP"; }
};

/// G-MISP: variable-grain multilevel blocks over the Hilbert order, greedy
/// chunking of the block sequence.
class GMispPartitioner : public Partitioner {
 public:
  explicit GMispPartitioner(PartitionerOptions options = {})
      : options_(options) {}
  [[nodiscard]] PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const override;
  [[nodiscard]] std::string name() const override { return "G-MISP"; }

 protected:
  /// Build the variable-grain block sequence: SFC-aligned runs of grain
  /// cells; heavy runs recursively split 8-way.  Returns run lengths.
  [[nodiscard]] std::vector<std::size_t> build_blocks(
      const WorkGrid& grid, std::span<const double> targets) const;
  [[nodiscard]] virtual Breaks split_blocks(
      std::span<const double> block_weights,
      std::span<const double> targets) const;

  PartitionerOptions options_;
};

/// G-MISP+SP: G-MISP blocks, optimal sequence partitioning of the block
/// sequence.
class GMispSpPartitioner final : public GMispPartitioner {
 public:
  explicit GMispSpPartitioner(PartitionerOptions options = {})
      : GMispPartitioner(options) {}
  [[nodiscard]] std::string name() const override { return "G-MISP+SP"; }

 protected:
  [[nodiscard]] Breaks split_blocks(
      std::span<const double> block_weights,
      std::span<const double> targets) const override;
};

/// pBD-ISP: p-way recursive binary dissection of the Hilbert sequence.
class PBdIspPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const override;
  [[nodiscard]] std::string name() const override { return "pBD-ISP"; }
  /// pBD-ISP dissects coarse contiguous runs — its strength is speed and
  /// low communication/migration, not fine balance.
  [[nodiscard]] int preferred_grain() const override { return 4; }
};

/// SP-ISP: optimal sequence partitioning at the finest grain.
class SpIspPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionResult partition(
      const WorkGrid& grid, std::span<const double> targets) const override;
  [[nodiscard]] std::string name() const override { return "SP-ISP"; }
};

/// All partitioners of the suite, keyed by name.
[[nodiscard]] std::vector<std::unique_ptr<Partitioner>> standard_suite(
    PartitionerOptions options = {});

/// Look up a partitioner by name in a freshly built suite ("SFC", "ISP",
/// "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP"); throws on unknown names.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    const std::string& name, PartitionerOptions options = {});

}  // namespace pragma::partition
