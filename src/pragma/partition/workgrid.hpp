// The composite work grid: the domain-based view of a SAMR hierarchy.
//
// All of the paper's partitioners are *domain-based*: they partition the
// physical (level-0) domain, and every refinement level above a region
// follows that region's owner.  The WorkGrid rasterizes a GridHierarchy
// onto a coarse lattice of grain cells (grain^3 level-0 cells each) and
// records, per grain cell:
//   * the computational work (cell-updates per coarse step, MIT-weighted),
//   * which levels are present (for communication weighting),
//   * the storage volume (for migration cost).
// Partitioners then assign each grain cell to a processor.
//
// Incremental maintenance: most regrids move a small fraction of the
// hierarchy's boxes, so a grid can be *updated* from an amr::HierarchyDelta
// (apply_delta) instead of re-rasterized from scratch — only the grain
// cells covered by added/removed boxes are touched.  Per-box contributions
// are integer-valued by construction (overlap volumes times integer powers
// of the refinement ratio), so the subtract/re-add round-trip is exact and
// the updated grid is bitwise-identical to a full rebuild; reference_build
// keeps the scalar rebuild around as the equivalence oracle.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pragma/amr/delta.hpp"
#include "pragma/amr/hierarchy.hpp"
#include "pragma/partition/prefix_sums.hpp"
#include "pragma/partition/sfc.hpp"

namespace pragma::partition {

/// Deltas whose churn() exceeds this are cheaper to absorb with a full
/// rebuild (the incremental path's per-touched-cell bookkeeping stops
/// paying for itself well before half the boxes have moved).
inline constexpr double kIncrementalChurnLimit = 0.35;

class WorkGrid {
 public:
  /// Rasterize `hierarchy` at the given grain (level-0 cells per grain-cell
  /// edge) using the given curve for the 1-D ordering.  `threads` > 1
  /// splits the per-box rasterization across the shared thread pool with
  /// per-thread partial grids merged in box order; 1 is the serial path.
  WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
           CurveKind curve = CurveKind::kHilbert, int threads = 1);

  /// Bitwise equivalence oracle: the same grid built with the pre-SIMD
  /// scalar per-box kernel (serial).  Tests and the perf-smoke bench gate
  /// the vectorized constructor and apply_delta against this.
  [[nodiscard]] static WorkGrid reference_build(
      const amr::GridHierarchy& hierarchy, int grain,
      CurveKind curve = CurveKind::kHilbert);

  /// Update this grid in place from a hierarchy delta, touching only the
  /// grain cells covered by the delta's boxes (work, level masks, storage,
  /// SFC sequence, and prefix sums).  Returns false — leaving the grid
  /// unmodified — when the delta cannot be applied: incompatible domain or
  /// ratio, level-count mismatch with this grid's state, or more levels
  /// than the 32-bit mask can hold.  Callers fall back to a full rebuild.
  [[nodiscard]] bool apply_delta(const amr::HierarchyDelta& delta);

  [[nodiscard]] int grain() const { return grain_; }
  [[nodiscard]] amr::IntVec3 lattice_dims() const { return dims_; }
  [[nodiscard]] std::size_t cell_count() const { return work_.size(); }
  [[nodiscard]] int num_levels() const { return num_levels_; }
  [[nodiscard]] int ratio() const { return ratio_; }
  [[nodiscard]] CurveKind curve() const { return curve_; }

  /// Work of grain cell `c` (linear index).
  [[nodiscard]] double work(std::size_t c) const { return work_[c]; }
  /// Total work over the grid.
  [[nodiscard]] double total_work() const { return total_work_; }
  /// Bitmask of levels present in grain cell `c` (bit l = level l).
  [[nodiscard]] std::uint32_t levels_present(std::size_t c) const {
    return levels_[c];
  }
  /// The full per-cell level-mask array (the communication kernels stream
  /// it; element c == levels_present(c)).
  [[nodiscard]] const std::vector<std::uint32_t>& levels() const {
    return levels_;
  }
  /// Storage volume of grain cell `c` in cell-equivalents across levels.
  [[nodiscard]] double storage(std::size_t c) const { return storage_[c]; }

  /// SFC visit order: order()[rank] = linear cell index.  The vector is
  /// shared with the process-wide curve cache (see curve_order_shared).
  [[nodiscard]] const std::vector<std::uint32_t>& order() const {
    return *order_;
  }
  /// Work in SFC order (the 1-D sequence the splitters divide).
  [[nodiscard]] const std::vector<double>& sequence() const {
    return sequence_;
  }
  /// Prefix sums of sequence(), built once so every splitter invocation on
  /// this grid shares the same O(1)-range-sum view.
  [[nodiscard]] const PrefixSums& prefix_sums() const { return prefix_; }

  /// Linear index from lattice coordinates.
  [[nodiscard]] std::size_t linear(amr::IntVec3 p) const {
    return static_cast<std::size_t>(p.x) +
           static_cast<std::size_t>(dims_.x) *
               (static_cast<std::size_t>(p.y) +
                static_cast<std::size_t>(dims_.y) *
                    static_cast<std::size_t>(p.z));
  }
  /// Lattice coordinates from a linear index.
  [[nodiscard]] amr::IntVec3 coords(std::size_t c) const;

  /// The level-0 box covered by grain cell `c`.
  [[nodiscard]] amr::Box cell_box(std::size_t c) const;

 private:
  WorkGrid(const amr::GridHierarchy& hierarchy, int grain, CurveKind curve,
           int threads, bool reference_kernels);

  int grain_;
  amr::IntVec3 dims_{0, 0, 0};
  int num_levels_ = 1;
  int ratio_ = 2;
  CurveKind curve_ = CurveKind::kHilbert;
  std::vector<double> work_;
  std::vector<std::uint32_t> levels_;
  std::vector<double> storage_;
  /// Per-level box cover counts, level-major: cover_[l * cell_count() + c]
  /// = number of level-l boxes overlapping grain cell c.  levels_ is the
  /// derived bitmask (bit l set iff the count is nonzero); the counts are
  /// what make level bits removable under apply_delta.
  std::vector<std::uint32_t> cover_;
  std::shared_ptr<const std::vector<std::uint32_t>> order_;
  /// Inverse of order_, fetched lazily on the first apply_delta.
  std::shared_ptr<const std::vector<std::uint32_t>> rank_;
  std::vector<double> sequence_;
  PrefixSums prefix_;
  double total_work_ = 0.0;
};

/// Thread-safe LRU cache of immutable WorkGrids keyed by (snapshot index,
/// grain, curve).  Trace replays and multi-run benches request the same
/// canonical grid once per partitioner run; with the cache each grid is
/// rasterized exactly once per trace and shared from then on.  The entry
/// count is bounded (least-recently-used grids are evicted) so long
/// multi-run services do not grow without limit, and steady-state regrids
/// can derive snapshot i's grid from snapshot i-1's via apply_delta
/// (get_or_update) instead of rebuilding.
class WorkGridCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 64;

  explicit WorkGridCache(std::size_t max_entries = kDefaultMaxEntries);

  /// Return the cached grid for (`snapshot`, `grain`, `curve`), building it
  /// from `hierarchy` on first request.  The caller must use a stable
  /// snapshot index <-> hierarchy mapping for the lifetime of the cache.
  [[nodiscard]] std::shared_ptr<const WorkGrid> get_or_build(
      std::size_t snapshot, const amr::GridHierarchy& hierarchy, int grain,
      CurveKind curve, int threads = 1);

  /// Like get_or_build, but on a miss first tries to derive the grid from
  /// the cached (`prev_snapshot`, `grain`, `curve`) entry by applying the
  /// hierarchy delta — a copy plus an update over the touched cells, which
  /// at low regrid churn is far cheaper than re-rasterizing.  Falls back to
  /// a full build when the previous grid is absent, the delta churn exceeds
  /// kIncrementalChurnLimit, or apply_delta rejects the delta.
  [[nodiscard]] std::shared_ptr<const WorkGrid> get_or_update(
      std::size_t snapshot, const amr::GridHierarchy& hierarchy,
      std::size_t prev_snapshot, const amr::GridHierarchy& prev_hierarchy,
      int grain, CurveKind curve, int threads = 1);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  void clear();

  /// Monotonic counters since construction (also exported through the obs
  /// metrics registry as partition.workgrid_cache.*).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t incremental_builds = 0;  ///< grids derived via apply_delta
    std::uint64_t full_builds = 0;         ///< grids rasterized from scratch
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    std::size_t snapshot;
    int grain;
    CurveKind curve;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = static_cast<std::uint64_t>(key.snapshot);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.grain);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.curve);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct Entry {
    std::shared_ptr<const WorkGrid> grid;
    std::list<Key>::iterator lru;
  };

  /// Callers hold the lock.  find_locked refreshes recency on hit;
  /// insert_locked evicts the LRU tail past the cap.
  [[nodiscard]] std::shared_ptr<const WorkGrid> find_locked(const Key& key);
  std::shared_ptr<const WorkGrid> insert_locked(
      const Key& key, std::shared_ptr<const WorkGrid> grid);

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> cache_;
  /// Most-recently-used at the front.
  std::list<Key> lru_;
  Stats stats_;
};

}  // namespace pragma::partition
