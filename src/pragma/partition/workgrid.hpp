// The composite work grid: the domain-based view of a SAMR hierarchy.
//
// All of the paper's partitioners are *domain-based*: they partition the
// physical (level-0) domain, and every refinement level above a region
// follows that region's owner.  The WorkGrid rasterizes a GridHierarchy
// onto a coarse lattice of grain cells (grain^3 level-0 cells each) and
// records, per grain cell:
//   * the computational work (cell-updates per coarse step, MIT-weighted),
//   * which levels are present (for communication weighting),
//   * the storage volume (for migration cost).
// Partitioners then assign each grain cell to a processor.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pragma/amr/hierarchy.hpp"
#include "pragma/partition/prefix_sums.hpp"
#include "pragma/partition/sfc.hpp"

namespace pragma::partition {

class WorkGrid {
 public:
  /// Rasterize `hierarchy` at the given grain (level-0 cells per grain-cell
  /// edge) using the given curve for the 1-D ordering.  `threads` > 1
  /// splits the per-box rasterization across the shared thread pool with
  /// per-thread partial grids merged in box order; 1 is the serial path.
  WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
           CurveKind curve = CurveKind::kHilbert, int threads = 1);

  [[nodiscard]] int grain() const { return grain_; }
  [[nodiscard]] amr::IntVec3 lattice_dims() const { return dims_; }
  [[nodiscard]] std::size_t cell_count() const { return work_.size(); }
  [[nodiscard]] int num_levels() const { return num_levels_; }
  [[nodiscard]] int ratio() const { return ratio_; }

  /// Work of grain cell `c` (linear index).
  [[nodiscard]] double work(std::size_t c) const { return work_[c]; }
  /// Total work over the grid.
  [[nodiscard]] double total_work() const { return total_work_; }
  /// Bitmask of levels present in grain cell `c` (bit l = level l).
  [[nodiscard]] std::uint32_t levels_present(std::size_t c) const {
    return levels_[c];
  }
  /// Storage volume of grain cell `c` in cell-equivalents across levels.
  [[nodiscard]] double storage(std::size_t c) const { return storage_[c]; }

  /// SFC visit order: order()[rank] = linear cell index.  The vector is
  /// shared with the process-wide curve cache (see curve_order_shared).
  [[nodiscard]] const std::vector<std::uint32_t>& order() const {
    return *order_;
  }
  /// Work in SFC order (the 1-D sequence the splitters divide).
  [[nodiscard]] const std::vector<double>& sequence() const {
    return sequence_;
  }
  /// Prefix sums of sequence(), built once so every splitter invocation on
  /// this grid shares the same O(1)-range-sum view.
  [[nodiscard]] const PrefixSums& prefix_sums() const { return prefix_; }

  /// Linear index from lattice coordinates.
  [[nodiscard]] std::size_t linear(amr::IntVec3 p) const {
    return static_cast<std::size_t>(p.x) +
           static_cast<std::size_t>(dims_.x) *
               (static_cast<std::size_t>(p.y) +
                static_cast<std::size_t>(dims_.y) *
                    static_cast<std::size_t>(p.z));
  }
  /// Lattice coordinates from a linear index.
  [[nodiscard]] amr::IntVec3 coords(std::size_t c) const;

  /// The level-0 box covered by grain cell `c`.
  [[nodiscard]] amr::Box cell_box(std::size_t c) const;

 private:
  int grain_;
  amr::IntVec3 dims_{0, 0, 0};
  int num_levels_ = 1;
  int ratio_ = 2;
  std::vector<double> work_;
  std::vector<std::uint32_t> levels_;
  std::vector<double> storage_;
  std::shared_ptr<const std::vector<std::uint32_t>> order_;
  std::vector<double> sequence_;
  PrefixSums prefix_;
  double total_work_ = 0.0;
};

/// Thread-safe cache of immutable WorkGrids keyed by (snapshot index,
/// grain, curve).  Trace replays and multi-run benches request the same
/// canonical grid once per partitioner run; with the cache each grid is
/// rasterized exactly once per trace and shared from then on.
class WorkGridCache {
 public:
  /// Return the cached grid for (`snapshot`, `grain`, `curve`), building it
  /// from `hierarchy` on first request.  The caller must use a stable
  /// snapshot index <-> hierarchy mapping for the lifetime of the cache.
  [[nodiscard]] std::shared_ptr<const WorkGrid> get_or_build(
      std::size_t snapshot, const amr::GridHierarchy& hierarchy, int grain,
      CurveKind curve, int threads = 1);

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Key {
    std::size_t snapshot;
    int grain;
    CurveKind curve;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = static_cast<std::uint64_t>(key.snapshot);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.grain);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(key.curve);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const WorkGrid>, KeyHash> cache_;
};

}  // namespace pragma::partition
