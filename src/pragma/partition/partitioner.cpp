#include "pragma/partition/partitioner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"

namespace pragma::partition {

namespace {

using Clock = std::chrono::steady_clock;

obs::Histogram& partition_seconds_histogram() {
  static obs::Histogram& histogram = obs::metrics().histogram(
      "partition.seconds", obs::default_histogram_options());
  return histogram;
}

/// Fill an OwnerMap from sequence breaks: chunk i owns the grain cells at
/// ranks [breaks[i], breaks[i+1]).
OwnerMap owners_from_breaks(const WorkGrid& grid, const Breaks& breaks) {
  OwnerMap map;
  map.nprocs = static_cast<int>(breaks.size()) - 1;
  map.owner.assign(grid.cell_count(), 0);
  const auto& order = grid.order();
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i)
    for (std::size_t rank = breaks[i]; rank < breaks[i + 1]; ++rank)
      map.owner[order[rank]] = static_cast<int>(i);
  return map;
}

std::size_t nonempty_chunks(const Breaks& breaks) {
  std::size_t count = 0;
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i)
    if (breaks[i + 1] > breaks[i]) ++count;
  return count;
}

PartitionResult sequence_partition(const WorkGrid& grid,
                                   std::span<const double> targets,
                                   const std::string& name,
                                   Breaks (*splitter)(const PrefixSums&,
                                                      std::span<const double>)) {
  PRAGMA_SPAN_VAR(span, "partition", "Partitioner.partition");
  span.annotate("partitioner", name);
  span.annotate("cells", grid.cell_count());
  const auto start = Clock::now();
  // Splitters run on the grid's shared prefix-sum view: range sums are O(1)
  // and every cut is a binary search.
  const Breaks breaks = splitter(grid.prefix_sums(), targets);
  PartitionResult result;
  result.owners = owners_from_breaks(grid, breaks);
  result.partition_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.partitioner = name;
  result.chunk_count = nonempty_chunks(breaks);
  result.unit_count = grid.cell_count();
  partition_seconds_histogram().observe(result.partition_seconds);
  return result;
}

}  // namespace

PartitionResult SfcPartitioner::partition(
    const WorkGrid& grid, std::span<const double> targets) const {
  return sequence_partition(grid, targets, name(), &plain_greedy_split);
}

PartitionResult IspPartitioner::partition(
    const WorkGrid& grid, std::span<const double> targets) const {
  return sequence_partition(grid, targets, name(), &greedy_split);
}

PartitionResult PBdIspPartitioner::partition(
    const WorkGrid& grid, std::span<const double> targets) const {
  return sequence_partition(grid, targets, name(), &dissection_split);
}

PartitionResult SpIspPartitioner::partition(
    const WorkGrid& grid, std::span<const double> targets) const {
  return sequence_partition(grid, targets, name(), &optimal_split);
}

std::vector<std::size_t> GMispPartitioner::build_blocks(
    const WorkGrid& grid, std::span<const double> targets) const {
  const PrefixSums& sums = grid.prefix_sums();
  const std::size_t n = sums.size();

  // Mean per-processor goal; a block is split while it is heavier than
  // split_factor * goal, down to single grain cells.  Runs are halved in
  // rank space (Hilbert runs stay geometrically compact), which realizes
  // the "variable grain": dense regions end up with fine blocks, empty
  // regions with coarse ones.
  double goal = grid.total_work() / static_cast<double>(targets.size());
  const double limit = std::max(1e-12, options_.gmisp_split_factor * goal);

  std::size_t start_len = 1;
  const auto start_edge = static_cast<std::size_t>(options_.gmisp_start_block);
  start_len = start_edge * start_edge * start_edge;
  if (start_len > n) start_len = n;

  // Depth-first agenda popped from the back, seeded right-to-left so that
  // blocks are emitted in ascending rank order.
  std::vector<std::size_t> result;
  std::vector<std::pair<std::size_t, std::size_t>> agenda;  // (begin, len)
  for (std::size_t begin = 0; begin < n; begin += start_len)
    agenda.emplace_back(begin, std::min(start_len, n - begin));
  std::reverse(agenda.begin(), agenda.end());
  while (!agenda.empty()) {
    auto [begin, len] = agenda.back();
    agenda.pop_back();
    const double work = sums.sum(begin, begin + len);
    if (len > 1 && work > limit) {
      const std::size_t half = len / 2;
      agenda.emplace_back(begin + half, len - half);
      agenda.emplace_back(begin, half);
      continue;
    }
    result.push_back(len);
  }
  return result;
}

Breaks GMispPartitioner::split_blocks(std::span<const double> block_weights,
                                      std::span<const double> targets) const {
  return greedy_split(block_weights, targets);
}

Breaks GMispSpPartitioner::split_blocks(
    std::span<const double> block_weights,
    std::span<const double> targets) const {
  return optimal_split(block_weights, targets);
}

PartitionResult GMispPartitioner::partition(
    const WorkGrid& grid, std::span<const double> targets) const {
  PRAGMA_SPAN_VAR(span, "partition", "Partitioner.partition");
  span.annotate("partitioner", name());
  span.annotate("cells", grid.cell_count());
  const auto start = Clock::now();
  const std::vector<std::size_t> lengths = build_blocks(grid, targets);

  // Aggregate the fine sequence into block weights (O(1) per block over
  // the shared prefix sums).
  const PrefixSums& sums = grid.prefix_sums();
  std::vector<double> block_weights;
  block_weights.reserve(lengths.size());
  std::size_t pos = 0;
  for (std::size_t len : lengths) {
    block_weights.push_back(sums.sum(pos, pos + len));
    pos += len;
  }

  const Breaks block_breaks = split_blocks(block_weights, targets);

  // Translate block breaks back to sequence breaks.
  std::vector<std::size_t> block_starts(lengths.size() + 1, 0);
  for (std::size_t b = 0; b < lengths.size(); ++b)
    block_starts[b + 1] = block_starts[b] + lengths[b];
  Breaks breaks(block_breaks.size());
  for (std::size_t i = 0; i < block_breaks.size(); ++i)
    breaks[i] = block_starts[block_breaks[i]];

  PartitionResult result;
  result.owners = owners_from_breaks(grid, breaks);
  result.partition_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.partitioner = name();
  result.chunk_count = nonempty_chunks(breaks);
  result.unit_count = lengths.size();
  partition_seconds_histogram().observe(result.partition_seconds);
  return result;
}

std::vector<std::unique_ptr<Partitioner>> standard_suite(
    PartitionerOptions options) {
  std::vector<std::unique_ptr<Partitioner>> suite;
  suite.push_back(std::make_unique<SfcPartitioner>());
  suite.push_back(std::make_unique<IspPartitioner>());
  suite.push_back(std::make_unique<GMispPartitioner>(options));
  suite.push_back(std::make_unique<GMispSpPartitioner>(options));
  suite.push_back(std::make_unique<PBdIspPartitioner>());
  suite.push_back(std::make_unique<SpIspPartitioner>());
  return suite;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name,
                                              PartitionerOptions options) {
  for (auto& partitioner : standard_suite(options))
    if (partitioner->name() == name) return std::move(partitioner);
  throw std::invalid_argument("make_partitioner: unknown partitioner " +
                              name);
}

}  // namespace pragma::partition
