// One-dimensional workload splitters.
//
// After the SFC maps the domain to a sequence, every partitioner reduces to
// dividing a weight sequence into p contiguous chunks with per-processor
// targets (equal targets for homogeneous runs; relative-capacity targets for
// the system-sensitive partitioner of Fig. 4).  Three splitters are
// implemented, mirroring the algorithmic spread of the paper's suite:
//
//  * greedy_split      — single pass, fills each chunk to its target (fast,
//                        moderate balance; used by SFC/ISP/G-MISP),
//  * optimal_split     — exact minimax contiguous partition via binary
//                        search on the bottleneck (the "+SP" sequence
//                        partitioning; best balance, slowest),
//  * dissection_split  — p-way recursive binary dissection (pBD; fast,
//                        keeps long contiguous runs together).
//
// All splitters run on prefix-sum kernels: chunk extents are binary searches
// over the PrefixSums view instead of O(n) rescans, so a full split costs
// O(n + p log n) (and each optimal_split feasibility probe O(p log n)).
// The original scan implementations are kept under the `reference_` prefix
// so tests can assert the kernels produce identical breaks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pragma/partition/prefix_sums.hpp"

namespace pragma::partition {

/// Result: chunk[i] = first sequence index of chunk i (chunk i spans
/// [breaks[i], breaks[i+1]) with breaks.size() == p + 1, breaks[0] == 0,
/// breaks[p] == n).  Chunks may be empty.
using Breaks = std::vector<std::size_t>;

/// Per-chunk loads under a given break vector.
[[nodiscard]] std::vector<double> chunk_loads(std::span<const double> weights,
                                              const Breaks& breaks);
/// Same, against a prebuilt prefix-sum view (O(p)).
[[nodiscard]] std::vector<double> chunk_loads(const PrefixSums& sums,
                                              const Breaks& breaks);

/// Bottleneck of a break vector: max_i load_i / target_i (targets are
/// fractions summing to 1; the total weight is factored out so 1.0 means
/// perfectly proportional).
[[nodiscard]] double bottleneck(std::span<const double> weights,
                                const Breaks& breaks,
                                std::span<const double> targets);

/// Greedy prefix filling: close a chunk once its load reaches its target
/// share (keeping the element that crosses the boundary on whichever side
/// is closer to the target).  Goals are recomputed from the remaining work
/// so rounding errors do not pile onto the last chunk.
[[nodiscard]] Breaks greedy_split(std::span<const double> weights,
                                  std::span<const double> targets);
/// Same, sharing a prebuilt prefix-sum view of `weights`.
[[nodiscard]] Breaks greedy_split(const PrefixSums& sums,
                                  std::span<const double> targets);

/// First-generation greedy: goals fixed up front from the total (no
/// remaining-work correction), so per-chunk surpluses accumulate onto the
/// trailing chunks.  This is the splitter of the early composite-SFC
/// partitioner the paper's Table 4 uses as the baseline.
[[nodiscard]] Breaks plain_greedy_split(std::span<const double> weights,
                                        std::span<const double> targets);
[[nodiscard]] Breaks plain_greedy_split(const PrefixSums& sums,
                                        std::span<const double> targets);

/// Exact minimax contiguous partition for weighted targets: binary search
/// on the bottleneck value with a greedy feasibility probe.  Each probe is
/// O(p log n) over the prefix sums, O(n + p log n log(W/eps)) overall.
[[nodiscard]] Breaks optimal_split(std::span<const double> weights,
                                   std::span<const double> targets);
[[nodiscard]] Breaks optimal_split(const PrefixSums& sums,
                                   std::span<const double> targets);

/// p-way recursive binary dissection: split the sequence into two parts
/// whose target shares are the sums of the target shares of the processor
/// halves, recurse.  Handles any p >= 1.
[[nodiscard]] Breaks dissection_split(std::span<const double> weights,
                                      std::span<const double> targets);
[[nodiscard]] Breaks dissection_split(const PrefixSums& sums,
                                      std::span<const double> targets);

/// Equal targets helper (1/p each).
[[nodiscard]] std::vector<double> equal_targets(std::size_t p);

// --- Reference scan kernels -----------------------------------------------
// The original O(n)-rescan implementations, element-by-element accumulation.
// Kept (and exercised by benches/tests) as the ground truth the prefix-sum
// kernels must match break-for-break.
[[nodiscard]] Breaks reference_greedy_split(std::span<const double> weights,
                                            std::span<const double> targets);
[[nodiscard]] Breaks reference_plain_greedy_split(
    std::span<const double> weights, std::span<const double> targets);
[[nodiscard]] Breaks reference_optimal_split(std::span<const double> weights,
                                             std::span<const double> targets);
[[nodiscard]] Breaks reference_dissection_split(
    std::span<const double> weights, std::span<const double> targets);
[[nodiscard]] std::vector<double> reference_chunk_loads(
    std::span<const double> weights, const Breaks& breaks);

}  // namespace pragma::partition
