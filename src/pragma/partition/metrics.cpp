#include "pragma/partition/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pragma::partition {

std::vector<double> processor_loads(const WorkGrid& grid,
                                    const OwnerMap& owners) {
  std::vector<double> loads(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    loads[static_cast<std::size_t>(owners.owner[c])] += grid.work(c);
  return loads;
}

std::vector<double> processor_storage(const WorkGrid& grid,
                                      const OwnerMap& owners) {
  std::vector<double> storage(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    storage[static_cast<std::size_t>(owners.owner[c])] += grid.storage(c);
  return storage;
}

double communication_volume(const WorkGrid& grid, const OwnerMap& owners) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument("communication_volume: size mismatch");
  const amr::IntVec3 dims = grid.lattice_dims();
  const int g = grid.grain();
  double total = 0.0;

  // For every lattice face between differently-owned cells, charge the
  // ghost-exchange area of each level present on both sides: a level-l face
  // is (g r^l)^2 cells, exchanged r^l times per coarse step.
  auto face_cost = [&](std::size_t a, std::size_t b) {
    const std::uint32_t shared =
        grid.levels_present(a) & grid.levels_present(b);
    if (shared == 0) return 0.0;
    double cost = 0.0;
    double r = 1.0;
    for (int l = 0; l < grid.num_levels(); ++l) {
      if (shared & (1u << l)) {
        const double edge = static_cast<double>(g) * r;
        cost += edge * edge * r;
      }
      r *= static_cast<double>(grid.ratio());
    }
    return cost;
  };

  for (int z = 0; z < dims.z; ++z)
    for (int y = 0; y < dims.y; ++y)
      for (int x = 0; x < dims.x; ++x) {
        const std::size_t c = grid.linear({x, y, z});
        if (x + 1 < dims.x) {
          const std::size_t n = grid.linear({x + 1, y, z});
          if (owners.owner[c] != owners.owner[n]) total += face_cost(c, n);
        }
        if (y + 1 < dims.y) {
          const std::size_t n = grid.linear({x, y + 1, z});
          if (owners.owner[c] != owners.owner[n]) total += face_cost(c, n);
        }
        if (z + 1 < dims.z) {
          const std::size_t n = grid.linear({x, y, z + 1});
          if (owners.owner[c] != owners.owner[n]) total += face_cost(c, n);
        }
      }
  return total;
}

double migration_fraction(const WorkGrid& grid, const OwnerMap& previous,
                          const OwnerMap& current) {
  if (previous.owner.size() != current.owner.size())
    throw std::invalid_argument("migration_fraction: size mismatch");
  double moved = 0.0;
  double total = 0.0;
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    total += grid.storage(c);
    if (previous.owner[c] != current.owner[c]) moved += grid.storage(c);
  }
  return total > 0.0 ? moved / total : 0.0;
}

PacMetrics evaluate_pac(const WorkGrid& grid, const PartitionResult& result,
                        std::span<const double> targets,
                        const OwnerMap* previous) {
  PacMetrics metrics;

  const std::vector<double> loads = processor_loads(grid, result.owners);
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;
  const double total = grid.total_work();
  double worst = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double share = targets[i] / tsum;
    if (share <= 0.0) continue;
    worst = std::max(worst, loads[i] / (share * total));
  }
  metrics.load_imbalance = total > 0.0 ? std::max(0.0, worst - 1.0) : 0.0;

  metrics.communication = communication_volume(grid, result.owners);
  metrics.partition_time = result.partition_seconds;
  if (previous != nullptr)
    metrics.data_migration = migration_fraction(grid, *previous,
                                                result.owners);

  // Fragmentation: maximal same-owner runs along the SFC order.
  std::size_t fragments = 0;
  int last_owner = -1;
  for (std::uint32_t c : grid.order()) {
    const int owner = result.owners.owner[c];
    if (owner != last_owner) {
      ++fragments;
      last_owner = owner;
    }
  }
  const auto p = static_cast<double>(result.owners.nprocs);
  metrics.overhead =
      p > 0.0 ? std::max(0.0, (static_cast<double>(fragments) - p) / p) : 0.0;
  return metrics;
}

}  // namespace pragma::partition
