#include "pragma/partition/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "pragma/obs/tracer.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::partition {

namespace {
/// Shared guard for the per-processor accumulators: the owner map must
/// cover every grain cell and every owner must be a valid processor, or
/// the accumulation loops index out of bounds.
void validate_owners(const char* who, const WorkGrid& grid,
                     const OwnerMap& owners) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  for (int owner : owners.owner)
    if (owner < 0 || owner >= owners.nprocs)
      throw std::invalid_argument(std::string(who) + ": owner out of range");
}

/// Cost of one lattice face whose sides share the levels in `mask`: a
/// level-l face is (g r^l)^2 cells, exchanged r^l times per coarse step.
/// Terms fold in ascending level order — the table builder and the
/// incremental tracker must repeat this association bit for bit.
double face_cost_scalar(std::uint32_t mask, int g, int num_levels,
                        int ratio) {
  double cost = 0.0;
  double r = 1.0;
  for (int l = 0; l < num_levels; ++l) {
    if (mask & (1u << l)) {
      const double edge = static_cast<double>(g) * r;
      cost += edge * edge * r;
    }
    r *= static_cast<double>(ratio);
  }
  return cost;
}

/// Past this depth the 2^levels table stops paying for itself; callers
/// fall back to the scalar per-face fold.
constexpr int kCommTableMaxLevels = 16;

std::vector<double> build_cost_table(int g, int num_levels, int ratio) {
  std::vector<double> table(std::size_t{1} << num_levels, 0.0);
  for (std::size_t mask = 1; mask < table.size(); ++mask)
    table[mask] = face_cost_scalar(static_cast<std::uint32_t>(mask), g,
                                   num_levels, ratio);
  return table;
}

/// Branchless z-slab sweep over [z0, z1) using a precomputed cost table.
/// Boundary faces resolve to the cell itself (owner difference 0), so the
/// inner loop is a straight-line select+gather chain; adding the resulting
/// 0.0 terms leaves the non-negative accumulator bitwise unchanged, which
/// keeps the fold order identical to the reference sweep's.
double sweep_slab_table(const int* owner, const std::uint32_t* levels,
                        amr::IntVec3 dims, const double* table, int z0,
                        int z1) {
  const std::size_t sy = static_cast<std::size_t>(dims.x);
  const std::size_t sz =
      static_cast<std::size_t>(dims.x) * static_cast<std::size_t>(dims.y);
  double slab_total = 0.0;
  for (int z = z0; z < z1; ++z) {
    const std::size_t zstep = z + 1 < dims.z ? sz : 0;
    for (int y = 0; y < dims.y; ++y) {
      const std::size_t ystep = y + 1 < dims.y ? sy : 0;
      const std::size_t base =
          sy * static_cast<std::size_t>(y) + sz * static_cast<std::size_t>(z);
      for (int x = 0; x < dims.x; ++x) {
        const std::size_t c = base + static_cast<std::size_t>(x);
        const std::size_t xn = c + static_cast<std::size_t>(x + 1 < dims.x);
        const std::size_t yn = c + ystep;
        const std::size_t zn = c + zstep;
        const int oc = owner[c];
        const std::uint32_t lc = levels[c];
        slab_total += oc != owner[xn] ? table[lc & levels[xn]] : 0.0;
        slab_total += oc != owner[yn] ? table[lc & levels[yn]] : 0.0;
        slab_total += oc != owner[zn] ? table[lc & levels[zn]] : 0.0;
      }
    }
  }
  return slab_total;
}
}  // namespace

std::vector<double> processor_loads(const WorkGrid& grid,
                                    const OwnerMap& owners) {
  validate_owners("processor_loads", grid, owners);
  std::vector<double> loads(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    loads[static_cast<std::size_t>(owners.owner[c])] += grid.work(c);
  return loads;
}

std::vector<double> processor_storage(const WorkGrid& grid,
                                      const OwnerMap& owners) {
  validate_owners("processor_storage", grid, owners);
  std::vector<double> storage(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    storage[static_cast<std::size_t>(owners.owner[c])] += grid.storage(c);
  return storage;
}

double reference_communication_volume(const WorkGrid& grid,
                                      const OwnerMap& owners) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument(
        "reference_communication_volume: size mismatch");
  const amr::IntVec3 dims = grid.lattice_dims();
  const int g = grid.grain();

  // Every face is visited from its lower cell, x then y then z per cell.
  double total = 0.0;
  for (int z = 0; z < dims.z; ++z)
    for (int y = 0; y < dims.y; ++y)
      for (int x = 0; x < dims.x; ++x) {
        const std::size_t c = grid.linear({x, y, z});
        const auto face = [&](std::size_t n) {
          if (owners.owner[c] == owners.owner[n]) return;
          total += face_cost_scalar(
              grid.levels_present(c) & grid.levels_present(n), g,
              grid.num_levels(), grid.ratio());
        };
        if (x + 1 < dims.x) face(grid.linear({x + 1, y, z}));
        if (y + 1 < dims.y) face(grid.linear({x, y + 1, z}));
        if (z + 1 < dims.z) face(grid.linear({x, y, z + 1}));
      }
  return total;
}

double communication_volume(const WorkGrid& grid, const OwnerMap& owners,
                            int threads) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument("communication_volume: size mismatch");
  PRAGMA_SPAN_VAR(span, "partition", "communication_volume");
  span.annotate("cells", grid.cell_count());
  const amr::IntVec3 dims = grid.lattice_dims();
  if (grid.num_levels() > kCommTableMaxLevels)
    return reference_communication_volume(grid, owners);

  const std::vector<double> table =
      build_cost_table(grid.grain(), grid.num_levels(), grid.ratio());
  const int* owner = owners.owner.data();
  const std::uint32_t* levels = grid.levels().data();

  if (threads <= 1 || dims.z < 2)
    return sweep_slab_table(owner, levels, dims, table.data(), 0, dims.z);

  // Z-slabs sweep disjoint face sets; per-slab partials reduce in slab
  // order (bitwise equal to the serial sweep for the integer-valued costs).
  std::vector<double> partials(
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            static_cast<std::size_t>(dims.z)),
      0.0);
  const std::size_t used = util::parallel_blocks(
      static_cast<std::size_t>(dims.z), static_cast<int>(partials.size()),
      [&](std::size_t block, std::size_t begin, std::size_t end) {
        partials[block] =
            sweep_slab_table(owner, levels, dims, table.data(),
                             static_cast<int>(begin), static_cast<int>(end));
      });
  double total = 0.0;
  for (std::size_t b = 0; b < used; ++b) total += partials[b];
  return total;
}

bool IncrementalCommVolume::shape_matches(const WorkGrid& grid) const {
  const amr::IntVec3 d = grid.lattice_dims();
  return d.x == dims_.x && d.y == dims_.y && d.z == dims_.z &&
         grain_ == grid.grain() && num_levels_ == grid.num_levels() &&
         ratio_ == grid.ratio();
}

void IncrementalCommVolume::reset(const WorkGrid& grid,
                                  const OwnerMap& owners) {
  validate_owners("IncrementalCommVolume::reset", grid, owners);
  dims_ = grid.lattice_dims();
  grain_ = grid.grain();
  num_levels_ = grid.num_levels();
  ratio_ = grid.ratio();
  prev_owner_ = owners.owner;
  prev_levels_ = grid.levels();
  table_ = num_levels_ <= kCommTableMaxLevels
               ? build_cost_table(grain_, num_levels_, ratio_)
               : std::vector<double>{};

  const std::size_t count = grid.cell_count();
  face_.assign(count * 3, 0.0);
  const std::size_t sy = static_cast<std::size_t>(dims_.x);
  const std::size_t sz = sy * static_cast<std::size_t>(dims_.y);
  const auto cost = [&](std::size_t a, std::size_t b) {
    if (prev_owner_[a] == prev_owner_[b]) return 0.0;
    const std::uint32_t mask = prev_levels_[a] & prev_levels_[b];
    return table_.empty()
               ? face_cost_scalar(mask, grain_, num_levels_, ratio_)
               : table_[mask];
  };
  // Prime the total with the serial sweep's fold order (z, y, x cells;
  // x, y, z faces per cell) so it starts bitwise-identical to
  // communication_volume.
  total_ = 0.0;
  for (int z = 0; z < dims_.z; ++z)
    for (int y = 0; y < dims_.y; ++y)
      for (int x = 0; x < dims_.x; ++x) {
        const std::size_t c = static_cast<std::size_t>(x) +
                              sy * static_cast<std::size_t>(y) +
                              sz * static_cast<std::size_t>(z);
        if (x + 1 < dims_.x) total_ += face_[c * 3 + 0] = cost(c, c + 1);
        if (y + 1 < dims_.y) total_ += face_[c * 3 + 1] = cost(c, c + sy);
        if (z + 1 < dims_.z) total_ += face_[c * 3 + 2] = cost(c, c + sz);
      }
}

double IncrementalCommVolume::update(const WorkGrid& grid,
                                     const OwnerMap& owners) {
  if (!primed() || !shape_matches(grid) ||
      owners.owner.size() != prev_owner_.size()) {
    reset(grid, owners);
    return total_;
  }
  validate_owners("IncrementalCommVolume::update", grid, owners);
  PRAGMA_SPAN_VAR(span, "partition", "communication_volume.incremental");

  const std::vector<std::uint32_t>& levels = grid.levels();
  const std::size_t count = prev_owner_.size();
  const std::size_t sy = static_cast<std::size_t>(dims_.x);
  const std::size_t sz = sy * static_cast<std::size_t>(dims_.y);
  const auto cost = [&](std::size_t a, std::size_t b) {
    if (owners.owner[a] == owners.owner[b]) return 0.0;
    const std::uint32_t mask = levels[a] & levels[b];
    return table_.empty()
               ? face_cost_scalar(mask, grain_, num_levels_, ratio_)
               : table_[mask];
  };
  // Re-evaluating a face is idempotent (second visit contributes new - new
  // = 0), so both endpoints of a face may independently trigger it without
  // any dedup bookkeeping.  The += of integer-valued deltas is exact, so
  // total_ stays equal to the full sweep bit for bit.
  const auto refresh = [&](std::size_t cell, std::size_t axis,
                           std::size_t neighbor) {
    const std::size_t f = cell * 3 + axis;
    const double fresh = cost(cell, neighbor);
    total_ += fresh - face_[f];
    face_[f] = fresh;
  };
  std::size_t changed = 0;
  for (std::size_t c = 0; c < count; ++c) {
    if (owners.owner[c] == prev_owner_[c] && levels[c] == prev_levels_[c])
      continue;
    ++changed;
    const amr::IntVec3 p = grid.coords(c);
    if (p.x + 1 < dims_.x) refresh(c, 0, c + 1);
    if (p.y + 1 < dims_.y) refresh(c, 1, c + sy);
    if (p.z + 1 < dims_.z) refresh(c, 2, c + sz);
    if (p.x > 0) refresh(c - 1, 0, c);
    if (p.y > 0) refresh(c - sy, 1, c);
    if (p.z > 0) refresh(c - sz, 2, c);
    prev_owner_[c] = owners.owner[c];
    prev_levels_[c] = levels[c];
  }
  span.annotate("changed_cells", changed);
  span.annotate("cells", count);
  return total_;
}

double migration_fraction(const WorkGrid& grid, const OwnerMap& previous,
                          const OwnerMap& current) {
  if (previous.owner.size() != current.owner.size())
    throw std::invalid_argument("migration_fraction: size mismatch");
  double moved = 0.0;
  double total = 0.0;
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    total += grid.storage(c);
    if (previous.owner[c] != current.owner[c]) moved += grid.storage(c);
  }
  return total > 0.0 ? moved / total : 0.0;
}

PacMetrics evaluate_pac(const WorkGrid& grid, const PartitionResult& result,
                        std::span<const double> targets,
                        const OwnerMap* previous, int threads,
                        IncrementalCommVolume* comm_tracker) {
  validate_owners("evaluate_pac", grid, result.owners);
  if (targets.size() != static_cast<std::size_t>(result.owners.nprocs))
    throw std::invalid_argument("evaluate_pac: targets/nprocs mismatch");
  PacMetrics metrics;

  const std::vector<double> loads = processor_loads(grid, result.owners);
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;
  const double total = grid.total_work();
  double worst = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double share = targets[i] / tsum;
    if (share <= 0.0) continue;
    worst = std::max(worst, loads[i] / (share * total));
  }
  metrics.load_imbalance = total > 0.0 ? std::max(0.0, worst - 1.0) : 0.0;

  metrics.communication =
      comm_tracker != nullptr
          ? comm_tracker->update(grid, result.owners)
          : communication_volume(grid, result.owners, threads);
  metrics.partition_time = result.partition_seconds;
  if (previous != nullptr)
    metrics.data_migration = migration_fraction(grid, *previous,
                                                result.owners);

  // Fragmentation: maximal same-owner runs along the SFC order.
  std::size_t fragments = 0;
  int last_owner = -1;
  for (std::uint32_t c : grid.order()) {
    const int owner = result.owners.owner[c];
    if (owner != last_owner) {
      ++fragments;
      last_owner = owner;
    }
  }
  const auto p = static_cast<double>(result.owners.nprocs);
  metrics.overhead =
      p > 0.0 ? std::max(0.0, (static_cast<double>(fragments) - p) / p) : 0.0;
  return metrics;
}

}  // namespace pragma::partition
