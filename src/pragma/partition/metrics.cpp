#include "pragma/partition/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "pragma/obs/tracer.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::partition {

namespace {
/// Shared guard for the per-processor accumulators: the owner map must
/// cover every grain cell and every owner must be a valid processor, or
/// the accumulation loops index out of bounds.
void validate_owners(const char* who, const WorkGrid& grid,
                     const OwnerMap& owners) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  for (int owner : owners.owner)
    if (owner < 0 || owner >= owners.nprocs)
      throw std::invalid_argument(std::string(who) + ": owner out of range");
}
}  // namespace

std::vector<double> processor_loads(const WorkGrid& grid,
                                    const OwnerMap& owners) {
  validate_owners("processor_loads", grid, owners);
  std::vector<double> loads(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    loads[static_cast<std::size_t>(owners.owner[c])] += grid.work(c);
  return loads;
}

std::vector<double> processor_storage(const WorkGrid& grid,
                                      const OwnerMap& owners) {
  validate_owners("processor_storage", grid, owners);
  std::vector<double> storage(static_cast<std::size_t>(owners.nprocs), 0.0);
  for (std::size_t c = 0; c < grid.cell_count(); ++c)
    storage[static_cast<std::size_t>(owners.owner[c])] += grid.storage(c);
  return storage;
}

double communication_volume(const WorkGrid& grid, const OwnerMap& owners,
                            int threads) {
  if (owners.owner.size() != grid.cell_count())
    throw std::invalid_argument("communication_volume: size mismatch");
  PRAGMA_SPAN_VAR(span, "partition", "communication_volume");
  span.annotate("cells", grid.cell_count());
  const amr::IntVec3 dims = grid.lattice_dims();
  const int g = grid.grain();

  // For every lattice face between differently-owned cells, charge the
  // ghost-exchange area of each level present on both sides: a level-l face
  // is (g r^l)^2 cells, exchanged r^l times per coarse step.
  auto face_cost = [&](std::size_t a, std::size_t b) {
    const std::uint32_t shared =
        grid.levels_present(a) & grid.levels_present(b);
    if (shared == 0) return 0.0;
    double cost = 0.0;
    double r = 1.0;
    for (int l = 0; l < grid.num_levels(); ++l) {
      if (shared & (1u << l)) {
        const double edge = static_cast<double>(g) * r;
        cost += edge * edge * r;
      }
      r *= static_cast<double>(grid.ratio());
    }
    return cost;
  };

  // Every face is visited from its lower cell, so z-slabs [z0, z1) sweep
  // disjoint face sets; per-slab partials are reduced in slab order.
  auto sweep_slab = [&](int z0, int z1) {
    double slab_total = 0.0;
    for (int z = z0; z < z1; ++z)
      for (int y = 0; y < dims.y; ++y)
        for (int x = 0; x < dims.x; ++x) {
          const std::size_t c = grid.linear({x, y, z});
          if (x + 1 < dims.x) {
            const std::size_t n = grid.linear({x + 1, y, z});
            if (owners.owner[c] != owners.owner[n])
              slab_total += face_cost(c, n);
          }
          if (y + 1 < dims.y) {
            const std::size_t n = grid.linear({x, y + 1, z});
            if (owners.owner[c] != owners.owner[n])
              slab_total += face_cost(c, n);
          }
          if (z + 1 < dims.z) {
            const std::size_t n = grid.linear({x, y, z + 1});
            if (owners.owner[c] != owners.owner[n])
              slab_total += face_cost(c, n);
          }
        }
    return slab_total;
  };

  if (threads <= 1 || dims.z < 2) return sweep_slab(0, dims.z);

  std::vector<double> partials(
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            static_cast<std::size_t>(dims.z)),
      0.0);
  const std::size_t used = util::parallel_blocks(
      static_cast<std::size_t>(dims.z), static_cast<int>(partials.size()),
      [&](std::size_t block, std::size_t begin, std::size_t end) {
        partials[block] =
            sweep_slab(static_cast<int>(begin), static_cast<int>(end));
      });
  double total = 0.0;
  for (std::size_t b = 0; b < used; ++b) total += partials[b];
  return total;
}

double migration_fraction(const WorkGrid& grid, const OwnerMap& previous,
                          const OwnerMap& current) {
  if (previous.owner.size() != current.owner.size())
    throw std::invalid_argument("migration_fraction: size mismatch");
  double moved = 0.0;
  double total = 0.0;
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    total += grid.storage(c);
    if (previous.owner[c] != current.owner[c]) moved += grid.storage(c);
  }
  return total > 0.0 ? moved / total : 0.0;
}

PacMetrics evaluate_pac(const WorkGrid& grid, const PartitionResult& result,
                        std::span<const double> targets,
                        const OwnerMap* previous, int threads) {
  validate_owners("evaluate_pac", grid, result.owners);
  if (targets.size() != static_cast<std::size_t>(result.owners.nprocs))
    throw std::invalid_argument("evaluate_pac: targets/nprocs mismatch");
  PacMetrics metrics;

  const std::vector<double> loads = processor_loads(grid, result.owners);
  double tsum = 0.0;
  for (double t : targets) tsum += t;
  if (tsum <= 0.0) tsum = 1.0;
  const double total = grid.total_work();
  double worst = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double share = targets[i] / tsum;
    if (share <= 0.0) continue;
    worst = std::max(worst, loads[i] / (share * total));
  }
  metrics.load_imbalance = total > 0.0 ? std::max(0.0, worst - 1.0) : 0.0;

  metrics.communication = communication_volume(grid, result.owners, threads);
  metrics.partition_time = result.partition_seconds;
  if (previous != nullptr)
    metrics.data_migration = migration_fraction(grid, *previous,
                                                result.owners);

  // Fragmentation: maximal same-owner runs along the SFC order.
  std::size_t fragments = 0;
  int last_owner = -1;
  for (std::uint32_t c : grid.order()) {
    const int owner = result.owners.owner[c];
    if (owner != last_owner) {
      ++fragments;
      last_owner = owner;
    }
  }
  const auto p = static_cast<double>(result.owners.nprocs);
  metrics.overhead =
      p > 0.0 ? std::max(0.0, (static_cast<double>(fragments) - p) / p) : 0.0;
  return metrics;
}

}  // namespace pragma::partition
