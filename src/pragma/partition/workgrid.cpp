#include "pragma/partition/workgrid.hpp"

#include <cmath>
#include <stdexcept>

namespace pragma::partition {

WorkGrid::WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
                   CurveKind curve)
    : grain_(grain),
      num_levels_(hierarchy.num_levels()),
      ratio_(hierarchy.ratio()) {
  if (grain <= 0) throw std::invalid_argument("WorkGrid: grain <= 0");
  const amr::IntVec3 base = hierarchy.base_dims();
  dims_ = {(base.x + grain - 1) / grain, (base.y + grain - 1) / grain,
           (base.z + grain - 1) / grain};
  const std::size_t count = static_cast<std::size_t>(dims_.x) *
                            static_cast<std::size_t>(dims_.y) *
                            static_cast<std::size_t>(dims_.z);
  work_.assign(count, 0.0);
  levels_.assign(count, 0u);
  storage_.assign(count, 0.0);

  // Rasterize each level's boxes onto the grain lattice.  A level-l box is
  // first coarsened to level-0 index space; for each overlapped grain cell
  // the exact level-0 overlap volume is scaled back to level-l quantities.
  for (const amr::GridLevel& level : hierarchy.levels()) {
    const auto r = static_cast<double>(hierarchy.cumulative_ratio(level.level));
    const double cells_per_l0 = r * r * r;      // level-l cells per L0 cell
    const double work_per_l0 = cells_per_l0 * r;  // MIT substeps
    const int rr = static_cast<int>(hierarchy.cumulative_ratio(level.level));
    for (const amr::Box& box : level.boxes) {
      const amr::Box in_l0 = box.coarsen(rr);
      const amr::IntVec3 glo{in_l0.lo().x / grain, in_l0.lo().y / grain,
                             in_l0.lo().z / grain};
      const amr::IntVec3 ghi{(in_l0.hi().x + grain - 1) / grain,
                             (in_l0.hi().y + grain - 1) / grain,
                             (in_l0.hi().z + grain - 1) / grain};
      for (int gz = glo.z; gz < ghi.z; ++gz)
        for (int gy = glo.y; gy < ghi.y; ++gy)
          for (int gx = glo.x; gx < ghi.x; ++gx) {
            const amr::Box cell({gx * grain, gy * grain, gz * grain},
                                {(gx + 1) * grain, (gy + 1) * grain,
                                 (gz + 1) * grain});
            const auto overlap = static_cast<double>(
                cell.intersection(in_l0).volume());
            if (overlap <= 0.0) continue;
            const std::size_t c = linear({gx, gy, gz});
            work_[c] += overlap * work_per_l0;
            storage_[c] += overlap * cells_per_l0;
            levels_[c] |= 1u << level.level;
          }
    }
  }

  total_work_ = 0.0;
  for (double w : work_) total_work_ += w;

  order_ = curve_order(dims_, curve);
  sequence_.reserve(order_.size());
  for (std::uint32_t c : order_) sequence_.push_back(work_[c]);
}

amr::IntVec3 WorkGrid::coords(std::size_t c) const {
  const auto x = static_cast<int>(c % static_cast<std::size_t>(dims_.x));
  const auto y = static_cast<int>((c / static_cast<std::size_t>(dims_.x)) %
                                  static_cast<std::size_t>(dims_.y));
  const auto z = static_cast<int>(c / (static_cast<std::size_t>(dims_.x) *
                                       static_cast<std::size_t>(dims_.y)));
  return {x, y, z};
}

amr::Box WorkGrid::cell_box(std::size_t c) const {
  const amr::IntVec3 p = coords(c);
  return amr::Box({p.x * grain_, p.y * grain_, p.z * grain_},
                  {(p.x + 1) * grain_, (p.y + 1) * grain_,
                   (p.z + 1) * grain_});
}

}  // namespace pragma::partition
