#include "pragma/partition/workgrid.hpp"

#include <cmath>
#include <stdexcept>

#include "pragma/obs/tracer.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::partition {

namespace {
/// One rasterization unit: a box with its level's precomputed weights.
struct BoxTask {
  const amr::Box* box;
  double work_per_l0;
  double cells_per_l0;
  int rr;
  std::uint32_t level_bit;
};

/// Rasterize one box onto (work, storage, levels) arrays.
void rasterize_box(const BoxTask& task, int grain, amr::IntVec3 dims,
                   std::vector<double>& work, std::vector<double>& storage,
                   std::vector<std::uint32_t>& levels) {
  const amr::Box in_l0 = task.box->coarsen(task.rr);
  const amr::IntVec3 glo{in_l0.lo().x / grain, in_l0.lo().y / grain,
                         in_l0.lo().z / grain};
  const amr::IntVec3 ghi{(in_l0.hi().x + grain - 1) / grain,
                         (in_l0.hi().y + grain - 1) / grain,
                         (in_l0.hi().z + grain - 1) / grain};
  for (int gz = glo.z; gz < ghi.z; ++gz)
    for (int gy = glo.y; gy < ghi.y; ++gy)
      for (int gx = glo.x; gx < ghi.x; ++gx) {
        const amr::Box cell({gx * grain, gy * grain, gz * grain},
                            {(gx + 1) * grain, (gy + 1) * grain,
                             (gz + 1) * grain});
        const auto overlap =
            static_cast<double>(cell.intersection(in_l0).volume());
        if (overlap <= 0.0) continue;
        const std::size_t c =
            static_cast<std::size_t>(gx) +
            static_cast<std::size_t>(dims.x) *
                (static_cast<std::size_t>(gy) +
                 static_cast<std::size_t>(dims.y) *
                     static_cast<std::size_t>(gz));
        work[c] += overlap * task.work_per_l0;
        storage[c] += overlap * task.cells_per_l0;
        levels[c] |= task.level_bit;
      }
}
}  // namespace

WorkGrid::WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
                   CurveKind curve, int threads)
    : grain_(grain),
      num_levels_(hierarchy.num_levels()),
      ratio_(hierarchy.ratio()) {
  if (grain <= 0) throw std::invalid_argument("WorkGrid: grain <= 0");
  PRAGMA_SPAN_VAR(span, "partition", "WorkGrid.build");
  span.annotate("grain", static_cast<std::int64_t>(grain));
  const amr::IntVec3 base = hierarchy.base_dims();
  dims_ = {(base.x + grain - 1) / grain, (base.y + grain - 1) / grain,
           (base.z + grain - 1) / grain};
  const std::size_t count = static_cast<std::size_t>(dims_.x) *
                            static_cast<std::size_t>(dims_.y) *
                            static_cast<std::size_t>(dims_.z);
  work_.assign(count, 0.0);
  levels_.assign(count, 0u);
  storage_.assign(count, 0.0);

  // Rasterize each level's boxes onto the grain lattice.  A level-l box is
  // first coarsened to level-0 index space; for each overlapped grain cell
  // the exact level-0 overlap volume is scaled back to level-l quantities.
  std::vector<BoxTask> tasks;
  for (const amr::GridLevel& level : hierarchy.levels()) {
    const auto r = static_cast<double>(hierarchy.cumulative_ratio(level.level));
    const double cells_per_l0 = r * r * r;      // level-l cells per L0 cell
    const double work_per_l0 = cells_per_l0 * r;  // MIT substeps
    const int rr = static_cast<int>(hierarchy.cumulative_ratio(level.level));
    for (const amr::Box& box : level.boxes)
      tasks.push_back({&box, work_per_l0, cells_per_l0, rr,
                       1u << level.level});
  }

  // Too few boxes to amortize per-thread partial grids: stay serial.
  constexpr std::size_t kMinTasksPerThread = 8;
  const std::size_t max_blocks =
      threads > 1 ? tasks.size() / kMinTasksPerThread : 1;
  if (max_blocks <= 1) {
    for (const BoxTask& task : tasks)
      rasterize_box(task, grain, dims_, work_, storage_, levels_);
  } else {
    const int blocks =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads), max_blocks));
    std::vector<std::vector<double>> part_work;
    std::vector<std::vector<double>> part_storage;
    std::vector<std::vector<std::uint32_t>> part_levels;
    part_work.resize(static_cast<std::size_t>(blocks));
    part_storage.resize(static_cast<std::size_t>(blocks));
    part_levels.resize(static_cast<std::size_t>(blocks));
    const std::size_t used = util::parallel_blocks(
        tasks.size(), blocks,
        [&](std::size_t block, std::size_t begin, std::size_t end) {
          auto& bw = part_work[block];
          auto& bs = part_storage[block];
          auto& bl = part_levels[block];
          bw.assign(count, 0.0);
          bs.assign(count, 0.0);
          bl.assign(count, 0u);
          for (std::size_t t = begin; t < end; ++t)
            rasterize_box(tasks[t], grain, dims_, bw, bs, bl);
        });
    // Merge the contiguous slices in block order: deterministic for a
    // fixed thread count (and exact whenever the work values are, as for
    // the integer-valued RM3D weights).
    for (std::size_t b = 0; b < used; ++b)
      for (std::size_t c = 0; c < count; ++c) {
        work_[c] += part_work[b][c];
        storage_[c] += part_storage[b][c];
        levels_[c] |= part_levels[b][c];
      }
  }

  total_work_ = 0.0;
  for (double w : work_) total_work_ += w;

  order_ = curve_order_shared(dims_, curve);
  sequence_.reserve(order_->size());
  for (std::uint32_t c : *order_) sequence_.push_back(work_[c]);
  prefix_ = PrefixSums(sequence_);
}

amr::IntVec3 WorkGrid::coords(std::size_t c) const {
  const auto x = static_cast<int>(c % static_cast<std::size_t>(dims_.x));
  const auto y = static_cast<int>((c / static_cast<std::size_t>(dims_.x)) %
                                  static_cast<std::size_t>(dims_.y));
  const auto z = static_cast<int>(c / (static_cast<std::size_t>(dims_.x) *
                                       static_cast<std::size_t>(dims_.y)));
  return {x, y, z};
}

amr::Box WorkGrid::cell_box(std::size_t c) const {
  const amr::IntVec3 p = coords(c);
  return amr::Box({p.x * grain_, p.y * grain_, p.z * grain_},
                  {(p.x + 1) * grain_, (p.y + 1) * grain_,
                   (p.z + 1) * grain_});
}

std::shared_ptr<const WorkGrid> WorkGridCache::get_or_build(
    std::size_t snapshot, const amr::GridHierarchy& hierarchy, int grain,
    CurveKind curve, int threads) {
  const Key key{snapshot, grain, curve};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Rasterize outside the lock; a concurrent builder of the same key loses
  // the try_emplace race and its grid is dropped.
  auto grid = std::make_shared<const WorkGrid>(hierarchy, grain, curve,
                                               threads);
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.try_emplace(key, std::move(grid)).first->second;
}

std::size_t WorkGridCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void WorkGridCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace pragma::partition
