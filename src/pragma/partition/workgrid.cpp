#include "pragma/partition/workgrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"
#include "pragma/util/arena.hpp"
#include "pragma/util/thread_pool.hpp"

namespace pragma::partition {

namespace {
/// One rasterization unit: a box with its level's precomputed weights.
struct BoxTask {
  const amr::Box* box;
  double work_per_l0;
  double cells_per_l0;
  int rr;
  int level;
};

/// Per-box weights of level l (MIT substepping: a level-l cell advances
/// r^l times per coarse step).  Must repeat GridHierarchy::cumulative_ratio
/// exactly so delta application matches full builds bit for bit.
BoxTask make_task(const amr::Box& box, int level, int ratio) {
  std::int64_t rr = 1;
  for (int i = 0; i < level; ++i) rr *= ratio;
  const auto r = static_cast<double>(rr);
  const double cells_per_l0 = r * r * r;        // level-l cells per L0 cell
  const double work_per_l0 = cells_per_l0 * r;  // MIT substeps
  return {&box, work_per_l0, cells_per_l0, static_cast<int>(rr), level};
}

/// Reference scalar kernel (the pre-SIMD implementation): rasterize one box
/// onto (work, storage) and its level's cover plane via per-cell Box
/// intersections.  Kept as the bitwise oracle for rasterize_box below.
void reference_rasterize_box(const BoxTask& task, int grain,
                             amr::IntVec3 dims, double* work, double* storage,
                             std::uint32_t* cover) {
  const amr::Box in_l0 = task.box->coarsen(task.rr);
  const amr::IntVec3 glo{in_l0.lo().x / grain, in_l0.lo().y / grain,
                         in_l0.lo().z / grain};
  const amr::IntVec3 ghi{(in_l0.hi().x + grain - 1) / grain,
                         (in_l0.hi().y + grain - 1) / grain,
                         (in_l0.hi().z + grain - 1) / grain};
  for (int gz = glo.z; gz < ghi.z; ++gz)
    for (int gy = glo.y; gy < ghi.y; ++gy)
      for (int gx = glo.x; gx < ghi.x; ++gx) {
        const amr::Box cell({gx * grain, gy * grain, gz * grain},
                            {(gx + 1) * grain, (gy + 1) * grain,
                             (gz + 1) * grain});
        const auto overlap =
            static_cast<double>(cell.intersection(in_l0).volume());
        if (overlap <= 0.0) continue;
        const std::size_t c =
            static_cast<std::size_t>(gx) +
            static_cast<std::size_t>(dims.x) *
                (static_cast<std::size_t>(gy) +
                 static_cast<std::size_t>(dims.y) *
                     static_cast<std::size_t>(gz));
        work[c] += overlap * task.work_per_l0;
        storage[c] += overlap * task.cells_per_l0;
        cover[c] += 1;
      }
}

/// Vectorizable kernel: the box's per-axis overlap lengths are materialized
/// once into arena scratch, then each lattice row is updated with a
/// branchless stride-1 loop (no Box construction, no intersection test —
/// every cell in the coarsened footprint overlaps by construction).  All
/// per-cell contributions are products of exact small integers, so the
/// factored form (ox * (oy*oz*weight)) produces bitwise-identical sums to
/// the reference kernel's (ox*oy*oz) * weight.
///
/// `sign` is +1 to deposit a box and -1 to withdraw it (apply_delta);
/// `touched`, when non-null, stamps every cell the box covers.
void rasterize_box(const BoxTask& task, int grain, amr::IntVec3 dims,
                   double* work, double* storage, std::uint32_t* cover,
                   double sign, std::uint8_t* touched) {
  const amr::Box in_l0 = task.box->coarsen(task.rr);
  const amr::IntVec3 glo{in_l0.lo().x / grain, in_l0.lo().y / grain,
                         in_l0.lo().z / grain};
  const amr::IntVec3 ghi{(in_l0.hi().x + grain - 1) / grain,
                         (in_l0.hi().y + grain - 1) / grain,
                         (in_l0.hi().z + grain - 1) / grain};
  const int nx = ghi.x - glo.x;
  const int ny = ghi.y - glo.y;
  const int nz = ghi.z - glo.z;
  if (nx <= 0 || ny <= 0 || nz <= 0) return;

  util::ScratchArena& arena = util::scratch_arena();
  arena.reset();
  const std::span<double> ox = arena.make_span<double>(
      static_cast<std::size_t>(nx));
  const std::span<double> oy = arena.make_span<double>(
      static_cast<std::size_t>(ny));
  const std::span<double> oz = arena.make_span<double>(
      static_cast<std::size_t>(nz));
  const auto axis_overlap = [grain](int g, int lo, int hi) {
    const int a = std::max(lo, g * grain);
    const int b = std::min(hi, (g + 1) * grain);
    return static_cast<double>(b - a);
  };
  for (int i = 0; i < nx; ++i)
    ox[static_cast<std::size_t>(i)] =
        axis_overlap(glo.x + i, in_l0.lo().x, in_l0.hi().x);
  for (int j = 0; j < ny; ++j)
    oy[static_cast<std::size_t>(j)] =
        axis_overlap(glo.y + j, in_l0.lo().y, in_l0.hi().y);
  for (int k = 0; k < nz; ++k)
    oz[static_cast<std::size_t>(k)] =
        axis_overlap(glo.z + k, in_l0.lo().z, in_l0.hi().z);

  const std::uint32_t cover_delta = sign < 0.0
                                        ? static_cast<std::uint32_t>(-1)
                                        : static_cast<std::uint32_t>(1);
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j) {
      const double oyz = oy[static_cast<std::size_t>(j)] *
                         oz[static_cast<std::size_t>(k)];
      const double wyz = sign * (oyz * task.work_per_l0);
      const double syz = sign * (oyz * task.cells_per_l0);
      const std::size_t base =
          static_cast<std::size_t>(glo.x) +
          static_cast<std::size_t>(dims.x) *
              (static_cast<std::size_t>(glo.y + j) +
               static_cast<std::size_t>(dims.y) *
                   static_cast<std::size_t>(glo.z + k));
      double* wrow = work + base;
      double* srow = storage + base;
      std::uint32_t* crow = cover + base;
      for (int i = 0; i < nx; ++i) {
        const double o = ox[static_cast<std::size_t>(i)];
        wrow[i] += o * wyz;
        srow[i] += o * syz;
        crow[i] += cover_delta;
      }
      if (touched != nullptr) {
        std::uint8_t* trow = touched + base;
        for (int i = 0; i < nx; ++i) trow[i] = 1;
      }
    }
}
}  // namespace

WorkGrid::WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
                   CurveKind curve, int threads)
    : WorkGrid(hierarchy, grain, curve, threads,
               /*reference_kernels=*/false) {}

WorkGrid WorkGrid::reference_build(const amr::GridHierarchy& hierarchy,
                                   int grain, CurveKind curve) {
  return WorkGrid(hierarchy, grain, curve, /*threads=*/1,
                  /*reference_kernels=*/true);
}

WorkGrid::WorkGrid(const amr::GridHierarchy& hierarchy, int grain,
                   CurveKind curve, int threads, bool reference_kernels)
    : grain_(grain),
      num_levels_(hierarchy.num_levels()),
      ratio_(hierarchy.ratio()),
      curve_(curve) {
  if (grain <= 0) throw std::invalid_argument("WorkGrid: grain <= 0");
  PRAGMA_SPAN_VAR(span, "partition", "WorkGrid.build");
  span.annotate("grain", static_cast<std::int64_t>(grain));
  const amr::IntVec3 base = hierarchy.base_dims();
  dims_ = {(base.x + grain - 1) / grain, (base.y + grain - 1) / grain,
           (base.z + grain - 1) / grain};
  const std::size_t count = static_cast<std::size_t>(dims_.x) *
                            static_cast<std::size_t>(dims_.y) *
                            static_cast<std::size_t>(dims_.z);
  work_.assign(count, 0.0);
  levels_.assign(count, 0u);
  storage_.assign(count, 0.0);
  cover_.assign(count * static_cast<std::size_t>(num_levels_), 0u);

  // Rasterize each level's boxes onto the grain lattice.  A level-l box is
  // first coarsened to level-0 index space; for each overlapped grain cell
  // the exact level-0 overlap volume is scaled back to level-l quantities.
  std::vector<BoxTask> tasks;
  for (const amr::GridLevel& level : hierarchy.levels())
    for (const amr::Box& box : level.boxes)
      tasks.push_back(make_task(box, level.level, ratio_));

  const auto deposit = [&](const BoxTask& task, double* work, double* storage,
                           std::uint32_t* cover_planes) {
    std::uint32_t* plane =
        cover_planes + static_cast<std::size_t>(task.level) * count;
    if (reference_kernels)
      reference_rasterize_box(task, grain, dims_, work, storage, plane);
    else
      rasterize_box(task, grain, dims_, work, storage, plane, 1.0, nullptr);
  };

  // Too few boxes to amortize per-thread partial grids: stay serial.
  constexpr std::size_t kMinTasksPerThread = 8;
  const std::size_t max_blocks =
      threads > 1 ? tasks.size() / kMinTasksPerThread : 1;
  if (max_blocks <= 1) {
    for (const BoxTask& task : tasks)
      deposit(task, work_.data(), storage_.data(), cover_.data());
  } else {
    const int blocks =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads), max_blocks));
    const std::size_t planes = count * static_cast<std::size_t>(num_levels_);
    std::vector<std::vector<double>> part_work;
    std::vector<std::vector<double>> part_storage;
    std::vector<std::vector<std::uint32_t>> part_cover;
    part_work.resize(static_cast<std::size_t>(blocks));
    part_storage.resize(static_cast<std::size_t>(blocks));
    part_cover.resize(static_cast<std::size_t>(blocks));
    const std::size_t used = util::parallel_blocks(
        tasks.size(), blocks,
        [&](std::size_t block, std::size_t begin, std::size_t end) {
          auto& bw = part_work[block];
          auto& bs = part_storage[block];
          auto& bc = part_cover[block];
          bw.assign(count, 0.0);
          bs.assign(count, 0.0);
          bc.assign(planes, 0u);
          for (std::size_t t = begin; t < end; ++t)
            deposit(tasks[t], bw.data(), bs.data(), bc.data());
        });
    // Merge the contiguous slices in block order: deterministic for a
    // fixed thread count (and exact whenever the work values are, as for
    // the integer-valued per-box contributions).
    for (std::size_t b = 0; b < used; ++b) {
      for (std::size_t c = 0; c < count; ++c) {
        work_[c] += part_work[b][c];
        storage_[c] += part_storage[b][c];
      }
      for (std::size_t p = 0; p < planes; ++p) cover_[p] += part_cover[b][p];
    }
  }

  // Level bitmasks are derived from the cover counts (bit l set iff any
  // level-l box covers the cell) — counts, unlike bits, survive removal.
  for (int l = 0; l < num_levels_; ++l) {
    const std::uint32_t bit = 1u << l;
    const std::uint32_t* plane =
        cover_.data() + static_cast<std::size_t>(l) * count;
    for (std::size_t c = 0; c < count; ++c)
      levels_[c] |= plane[c] != 0 ? bit : 0u;
  }

  total_work_ = 0.0;
  for (double w : work_) total_work_ += w;

  order_ = curve_order_shared(dims_, curve);
  sequence_.reserve(order_->size());
  for (std::uint32_t c : *order_) sequence_.push_back(work_[c]);
  prefix_ = PrefixSums(sequence_);
}

bool WorkGrid::apply_delta(const amr::HierarchyDelta& delta) {
  if (!delta.compatible) return false;
  if (delta.after_levels < 1 || delta.after_levels > 32) return false;
  if (delta.before_levels != num_levels_) return false;
  const amr::IntVec3 expect{(delta.base_dims.x + grain_ - 1) / grain_,
                            (delta.base_dims.y + grain_ - 1) / grain_,
                            (delta.base_dims.z + grain_ - 1) / grain_};
  if (!(expect == dims_)) return false;
  const int max_levels = std::max(num_levels_, delta.after_levels);
  for (const amr::LevelDelta& level : delta.levels)
    if (level.level < 0 || level.level >= max_levels) return false;
  if (delta.empty()) return true;

  PRAGMA_SPAN_VAR(span, "partition", "WorkGrid.apply_delta");
  const std::size_t count = work_.size();

  // Grow the cover planes when the delta deepens the hierarchy; trailing
  // planes of removed levels end up all-zero and are trimmed below.
  cover_.resize(count * static_cast<std::size_t>(max_levels), 0u);

  // Withdraw removed boxes, deposit added ones, stamping every grain cell
  // either kind covers.  The per-cell contributions are exact integers, so
  // subtraction restores the pre-box sums bit for bit.
  std::vector<std::uint8_t> touched(count, 0);
  std::size_t changed_boxes = 0;
  for (const amr::LevelDelta& level : delta.levels) {
    std::uint32_t* plane =
        cover_.data() + static_cast<std::size_t>(level.level) * count;
    // A box's total work contribution is its coarsened volume times the
    // level weight (the grain-cell overlaps tile the coarsened box), so
    // total_work_ updates in O(1) per box — and stays bitwise-identical to
    // the constructor's fold because every quantity is an exact integer.
    for (const amr::Box& box : level.removed) {
      const BoxTask task = make_task(box, level.level, ratio_);
      rasterize_box(task, grain_, dims_, work_.data(), storage_.data(),
                    plane, -1.0, touched.data());
      total_work_ -= static_cast<double>(box.coarsen(task.rr).volume()) *
                     task.work_per_l0;
    }
    for (const amr::Box& box : level.added) {
      const BoxTask task = make_task(box, level.level, ratio_);
      rasterize_box(task, grain_, dims_, work_.data(), storage_.data(),
                    plane, 1.0, touched.data());
      total_work_ += static_cast<double>(box.coarsen(task.rr).volume()) *
                     task.work_per_l0;
    }
    changed_boxes += level.removed.size() + level.added.size();
  }
  num_levels_ = delta.after_levels;
  cover_.resize(count * static_cast<std::size_t>(num_levels_));

  // Re-derive the level bitmask of touched cells from the cover counts and
  // refresh their entries in the SFC-ordered sequence; untouched cells are
  // exactly as a full rebuild would leave them.
  if (!rank_) rank_ = curve_rank_shared(dims_, curve_);
  const std::vector<std::uint32_t>& rank = *rank_;
  std::size_t touched_cells = 0;
  std::size_t min_rank = sequence_.size();
  for (std::size_t c = 0; c < count; ++c) {
    if (!touched[c]) continue;
    ++touched_cells;
    std::uint32_t mask = 0;
    for (int l = 0; l < num_levels_; ++l) {
      const std::uint32_t covered =
          cover_[static_cast<std::size_t>(l) * count + c];
      mask |= covered != 0 ? 1u << l : 0u;
    }
    levels_[c] = mask;
    const std::size_t r = rank[c];
    sequence_[r] = work_[c];
    min_rank = std::min(min_rank, r);
  }
  if (min_rank < sequence_.size()) prefix_.update_suffix(min_rank, sequence_);

  span.annotate("boxes", changed_boxes);
  span.annotate("touched_cells", touched_cells);
  span.annotate("cells", count);
  return true;
}

amr::IntVec3 WorkGrid::coords(std::size_t c) const {
  const auto x = static_cast<int>(c % static_cast<std::size_t>(dims_.x));
  const auto y = static_cast<int>((c / static_cast<std::size_t>(dims_.x)) %
                                  static_cast<std::size_t>(dims_.y));
  const auto z = static_cast<int>(c / (static_cast<std::size_t>(dims_.x) *
                                       static_cast<std::size_t>(dims_.y)));
  return {x, y, z};
}

amr::Box WorkGrid::cell_box(std::size_t c) const {
  const amr::IntVec3 p = coords(c);
  return amr::Box({p.x * grain_, p.y * grain_, p.z * grain_},
                  {(p.x + 1) * grain_, (p.y + 1) * grain_,
                   (p.z + 1) * grain_});
}

namespace {
struct CacheCounters {
  obs::Counter& hits = obs::metrics().counter("partition.workgrid_cache.hits");
  obs::Counter& misses =
      obs::metrics().counter("partition.workgrid_cache.misses");
  obs::Counter& evictions =
      obs::metrics().counter("partition.workgrid_cache.evictions");
  obs::Counter& incremental =
      obs::metrics().counter("partition.workgrid_cache.incremental_builds");
  obs::Counter& full =
      obs::metrics().counter("partition.workgrid_cache.full_builds");
};

CacheCounters& cache_counters() {
  static CacheCounters counters;
  return counters;
}
}  // namespace

WorkGridCache::WorkGridCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

std::shared_ptr<const WorkGrid> WorkGridCache::find_locked(const Key& key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.misses;
    cache_counters().misses.add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++stats_.hits;
  cache_counters().hits.add();
  return it->second.grid;
}

std::shared_ptr<const WorkGrid> WorkGridCache::insert_locked(
    const Key& key, std::shared_ptr<const WorkGrid> grid) {
  const auto [it, inserted] = cache_.try_emplace(key);
  if (!inserted) return it->second.grid;  // lost a concurrent-build race
  lru_.push_front(key);
  it->second = Entry{std::move(grid), lru_.begin()};
  while (cache_.size() > max_entries_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    cache_counters().evictions.add();
  }
  return it->second.grid;
}

std::shared_ptr<const WorkGrid> WorkGridCache::get_or_build(
    std::size_t snapshot, const amr::GridHierarchy& hierarchy, int grain,
    CurveKind curve, int threads) {
  const Key key{snapshot, grain, curve};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto grid = find_locked(key)) return grid;
  }
  // Rasterize outside the lock; a concurrent builder of the same key loses
  // the insertion race and its grid is dropped.
  auto grid = std::make_shared<const WorkGrid>(hierarchy, grain, curve,
                                               threads);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.full_builds;
  cache_counters().full.add();
  return insert_locked(key, std::move(grid));
}

std::shared_ptr<const WorkGrid> WorkGridCache::get_or_update(
    std::size_t snapshot, const amr::GridHierarchy& hierarchy,
    std::size_t prev_snapshot, const amr::GridHierarchy& prev_hierarchy,
    int grain, CurveKind curve, int threads) {
  const Key key{snapshot, grain, curve};
  std::shared_ptr<const WorkGrid> previous;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto grid = find_locked(key)) return grid;
    const auto prev_it = cache_.find(Key{prev_snapshot, grain, curve});
    if (prev_it != cache_.end()) previous = prev_it->second.grid;
  }

  if (previous != nullptr) {
    const amr::HierarchyDelta delta =
        amr::diff_hierarchies(prev_hierarchy, hierarchy);
    if (delta.compatible && delta.churn() <= kIncrementalChurnLimit) {
      // Copy-on-update: the cached previous grid stays immutable and
      // shared; the copy absorbs the delta over the touched cells only.
      auto updated = std::make_shared<WorkGrid>(*previous);
      if (updated->apply_delta(delta)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.incremental_builds;
        cache_counters().incremental.add();
        return insert_locked(key,
                             std::shared_ptr<const WorkGrid>(std::move(updated)));
      }
    }
  }
  return get_or_build(snapshot, hierarchy, grain, curve, threads);
}

std::size_t WorkGridCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void WorkGridCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  lru_.clear();
}

WorkGridCache::Stats WorkGridCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pragma::partition
