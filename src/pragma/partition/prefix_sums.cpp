#include "pragma/partition/prefix_sums.hpp"

#include <algorithm>

namespace pragma::partition {

PrefixSums::PrefixSums(std::span<const double> weights) {
  pre_.resize(weights.size() + 1);
  pre_[0] = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    pre_[i + 1] = pre_[i] + weights[i];
}

void PrefixSums::update_suffix(std::size_t from,
                               std::span<const double> weights) {
  pre_.resize(weights.size() + 1);
  if (pre_.size() == 1) pre_[0] = 0.0;
  for (std::size_t i = from; i < weights.size(); ++i)
    pre_[i + 1] = pre_[i] + weights[i];
}

std::size_t PrefixSums::last_within(std::size_t lo, std::size_t hi,
                                    double bound) const {
  const auto first = pre_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = pre_.begin() + static_cast<std::ptrdiff_t>(hi) + 1;
  const auto it = std::upper_bound(first, last, pre_[lo] + bound);
  if (it == first) return lo;  // negative bound: even the empty range fails
  return static_cast<std::size_t>(it - pre_.begin()) - 1;
}

std::size_t PrefixSums::first_reaching(std::size_t lo, std::size_t hi,
                                       double bound) const {
  const auto first = pre_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = pre_.begin() + static_cast<std::ptrdiff_t>(hi) + 1;
  const auto it = std::lower_bound(first, last, pre_[lo] + bound);
  if (it == last) return hi;
  return static_cast<std::size_t>(it - pre_.begin());
}

}  // namespace pragma::partition
