#include "pragma/res/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "pragma/obs/metrics.hpp"

namespace pragma::res {

namespace {
obs::Gauge& desired_gauge() {
  static obs::Gauge& gauge =
      obs::metrics().gauge("res.autoscale.desired_workers");
  return gauge;
}
obs::Gauge& demand_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("res.autoscale.demand");
  return gauge;
}
}  // namespace

PredictiveAutoscaler::PredictiveAutoscaler(AutoscaleConfig config)
    : config_(config) {
  if (config_.min_workers == 0) config_.min_workers = 1;
  if (config_.max_workers < config_.min_workers)
    config_.max_workers = config_.min_workers;
  if (config_.interval_s <= 0.0) config_.interval_s = 1.0;
  if (config_.target_runs_per_worker <= 0.0)
    config_.target_runs_per_worker = 1.0;
}

std::size_t PredictiveAutoscaler::lead_steps() const {
  if (config_.lead_steps > 0) return config_.lead_steps;
  return static_cast<std::size_t>(
      std::ceil(std::max(0.0, config_.spinup_s) / config_.interval_s));
}

void PredictiveAutoscaler::observe(double now_s, double demand) {
  current_ = std::max(0.0, demand);
  demand_.observe(now_s, current_);
  demand_gauge().set(current_);
}

void PredictiveAutoscaler::observe_tenant(const std::string& tenant,
                                          double now_s, double demand) {
  std::unique_ptr<monitor::SeriesForecaster>& series = tenants_[tenant];
  if (!series) series = std::make_unique<monitor::SeriesForecaster>();
  series->observe(now_s, std::max(0.0, demand));
}

double PredictiveAutoscaler::current_demand() const { return current_; }

double PredictiveAutoscaler::forecast_demand() const {
  return demand_.predict_ahead(lead_steps());
}

double PredictiveAutoscaler::planning_demand() const {
  // Prediction only ever adds capacity ahead of a ramp; the idle cooldown
  // owns scale-down, so a low forecast never yanks workers mid-burst.
  if (!config_.predictive) return current_;
  return std::max(current_, forecast_demand());
}

std::size_t PredictiveAutoscaler::desired_workers() const {
  const double demand = planning_demand();
  const auto desired = static_cast<std::size_t>(
      std::ceil(demand / config_.target_runs_per_worker));
  const std::size_t clamped =
      std::clamp(desired, config_.min_workers, config_.max_workers);
  desired_gauge().set(static_cast<double>(clamped));
  return clamped;
}

std::map<std::string, double> PredictiveAutoscaler::tenant_shares() const {
  std::map<std::string, double> shares;
  if (tenants_.empty()) return shares;
  double sum = 0.0;
  for (const auto& [tenant, series] : tenants_) {
    const double forecast =
        std::max(series->predict_ahead(lead_steps()), 0.0);
    shares[tenant] = forecast;
    sum += forecast;
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(shares.size());
    for (auto& [tenant, share] : shares) share = uniform;
    return shares;
  }
  for (auto& [tenant, share] : shares) share /= sum;
  return shares;
}

bool PredictiveAutoscaler::scale_down_due(double now_s,
                                          std::size_t alive) const {
  if (desired_workers() >= alive) {
    below_since_s_ = -1.0;
    return false;
  }
  if (below_since_s_ < 0.0) {
    below_since_s_ = now_s;
    return false;
  }
  return now_s - below_since_s_ >= config_.scale_down_after_s;
}

void PredictiveAutoscaler::note_scaled(double now_s) {
  last_scale_s_ = now_s;
  below_since_s_ = -1.0;
}

}  // namespace pragma::res
