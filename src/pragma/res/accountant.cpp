#include "pragma/res/accountant.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "pragma/obs/metrics.hpp"

namespace pragma::res {

namespace {

// Accounting counters; every add() is a no-op while obs metrics are off.
obs::Counter& tracked_counter() {
  static obs::Counter& counter = obs::metrics().counter("res.runs.tracked");
  return counter;
}
obs::Counter& kills_counter() {
  static obs::Counter& counter = obs::metrics().counter("res.budget.kills");
  return counter;
}
obs::Counter& throttles_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("res.budget.throttles");
  return counter;
}
obs::Gauge& cpu_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("res.total.cpu_s");
  return gauge;
}
obs::Gauge& io_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("res.total.io_bytes");
  return gauge;
}
obs::Gauge& mem_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("res.total.peak_mem_bytes");
  return gauge;
}

std::string format_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024) {
    os << (static_cast<double>(bytes) / (1024.0 * 1024.0)) << " MiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace

RunAccount::RunAccount(std::string run, std::string tenant,
                       ResourceBudget budget)
    : run_(std::move(run)),
      tenant_(std::move(tenant)),
      budget_(budget),
      opened_(std::chrono::steady_clock::now()) {}

double RunAccount::wall_elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       opened_)
      .count();
}

void RunAccount::charge_cpu(double seconds) {
  if (seconds < 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  usage_.cpu_s += seconds;
  ++usage_.samples;
  enforce_locked();
}

void RunAccount::charge_io(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  usage_.io_bytes += bytes;
  enforce_locked();
}

void RunAccount::sample_memory(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  usage_.peak_mem_bytes = std::max(usage_.peak_mem_bytes, bytes);
  // Exponentially-weighted steady footprint (alpha 1/8): cheap, bounded,
  // and robust to one-step allocation spikes.
  constexpr double kAlpha = 0.125;
  if (usage_.steady_mem_bytes <= 0.0) {
    usage_.steady_mem_bytes = static_cast<double>(bytes);
  } else {
    usage_.steady_mem_bytes +=
        kAlpha * (static_cast<double>(bytes) - usage_.steady_mem_bytes);
  }
  enforce_locked();
}

void RunAccount::enforce_locked() {
  if (!violation_.empty() || !budget_.any()) return;
  std::ostringstream os;
  if (budget_.cpu_s > 0.0 && usage_.cpu_s > budget_.cpu_s) {
    os << "cpu budget " << budget_.cpu_s << "s exceeded (used "
       << usage_.cpu_s << "s)";
  } else if (budget_.mem_bytes > 0 &&
             usage_.peak_mem_bytes > budget_.mem_bytes) {
    os << "memory budget " << format_bytes(budget_.mem_bytes)
       << " exceeded (peak " << format_bytes(usage_.peak_mem_bytes) << ")";
  } else if (budget_.io_bytes > 0 && usage_.io_bytes > budget_.io_bytes) {
    os << "io budget " << format_bytes(budget_.io_bytes) << " exceeded (wrote "
       << format_bytes(usage_.io_bytes) << ")";
  } else if (budget_.wall_s > 0.0 && wall_elapsed_s() > budget_.wall_s) {
    os << "wall budget " << budget_.wall_s << "s exceeded (elapsed "
       << wall_elapsed_s() << "s)";
  } else {
    return;
  }
  violation_ = os.str();
  if (budget_.action == ResourceBudget::Action::kKill) {
    stop_.store(true, std::memory_order_relaxed);
  } else {
    throttle_.store(true, std::memory_order_relaxed);
  }
}

bool RunAccount::violated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !violation_.empty();
}

std::string RunAccount::violation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violation_;
}

ResourceUsage RunAccount::usage() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResourceUsage snapshot = usage_;
  snapshot.wall_s = wall_elapsed_s();
  return snapshot;
}

std::shared_ptr<RunAccount> ResourceAccountant::open(
    const std::string& run, const std::string& tenant,
    const ResourceBudget& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<RunAccount>& slot = live_[run];
  if (!slot) {
    slot = std::make_shared<RunAccount>(run, tenant, budget);
    ++tenants_[tenant].runs;
    tracked_counter().add();
  }
  return slot;
}

void ResourceAccountant::close(const std::shared_ptr<RunAccount>& account) {
  if (!account) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(account->run_name());
  if (it == live_.end() || it->second != account) return;  // already closed
  live_.erase(it);

  const ResourceUsage used = account->usage();
  TenantUsage& tenant = tenants_[account->tenant()];
  tenant.usage.cpu_s += used.cpu_s;
  tenant.usage.io_bytes += used.io_bytes;
  tenant.usage.peak_mem_bytes =
      std::max(tenant.usage.peak_mem_bytes, used.peak_mem_bytes);
  tenant.usage.steady_mem_bytes = used.steady_mem_bytes;
  tenant.usage.wall_s += used.wall_s;
  tenant.usage.samples += used.samples;
  total_.cpu_s += used.cpu_s;
  total_.io_bytes += used.io_bytes;
  total_.peak_mem_bytes = std::max(total_.peak_mem_bytes, used.peak_mem_bytes);
  total_.wall_s += used.wall_s;
  total_.samples += used.samples;
  if (account->violated()) {
    if (account->budget().action == ResourceBudget::Action::kKill) {
      ++tenant.kills;
      ++kills_;
      kills_counter().add();
    } else {
      ++tenant.throttles;
      ++throttles_;
      throttles_counter().add();
    }
  }
  cpu_gauge().set(total_.cpu_s);
  io_gauge().set(static_cast<double>(total_.io_bytes));
  mem_gauge().set(static_cast<double>(total_.peak_mem_bytes));
}

TenantUsage ResourceAccountant::tenant_usage(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second : TenantUsage{};
}

std::vector<std::string> ResourceAccountant::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, usage] : tenants_) names.push_back(name);
  return names;
}

ResourceUsage ResourceAccountant::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::size_t ResourceAccountant::kills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kills_;
}

std::size_t ResourceAccountant::throttles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return throttles_;
}

std::size_t ResourceAccountant::open_accounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

}  // namespace pragma::res
