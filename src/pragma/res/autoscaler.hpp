// Predictive autoscaling of the worker pool (the tentpole's third leg).
//
// The paper's thesis — predict resource behavior, adapt proactively —
// applied to the service layer itself: demand series (open runs, queue
// depth, per-tenant usage) feed the NWS forecaster ensemble through
// monitor::SeriesForecaster, and the desired worker count is computed
// from the *forecast* demand a provisioning-delay ahead, not just the
// current one.  A reactive-only mode (predictive = false) exists so the
// autoscale_slo bench can measure exactly what the lookahead buys.
//
// The scaler itself is pure policy: observe() ingests one demand sample,
// desired_workers() answers, and the DistributedService (worker.cpp) does
// the actual joining/killing inside simulator events.  With
// AutoscaleConfig::enabled false nothing is constructed and no event is
// scheduled — the disabled path is byte-identical.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "pragma/monitor/forecaster.hpp"

namespace pragma::res {

struct AutoscaleConfig {
  /// Master switch: false = no autoscaler, no periodic event, byte-
  /// identical service behavior.
  bool enabled = false;
  /// true = scale on the forecast demand `lead_steps` intervals ahead;
  /// false = scale on current demand only (the reactive baseline).
  bool predictive = true;
  std::size_t min_workers = 1;
  std::size_t max_workers = 16;
  /// Desired open runs (queued + in flight) per worker; the pool is sized
  /// to ceil(demand / target_runs_per_worker).
  double target_runs_per_worker = 2.0;
  /// Evaluation cadence in simulated seconds.
  double interval_s = 1.0;
  /// Provisioning delay: a scale-up decision joins its worker this many
  /// simulated seconds later (why prediction matters — a reactive scaler
  /// pays this lag *after* the burst has already queued).
  double spinup_s = 2.0;
  /// Demand must sit below the scale-down threshold for this long before
  /// an idle auto-added worker is retired.
  double scale_down_after_s = 10.0;
  /// Forecast horizon in intervals for the predictive mode.  0 picks
  /// ceil(spinup_s / interval_s) — look exactly one provisioning delay
  /// ahead.
  std::size_t lead_steps = 0;
};

/// Forecast-driven pool sizing + per-tenant share prediction.
class PredictiveAutoscaler {
 public:
  explicit PredictiveAutoscaler(AutoscaleConfig config);

  /// Ingest one demand sample (open runs across all tenants) at simulated
  /// time `now_s`.
  void observe(double now_s, double demand);
  /// Ingest one tenant's share of the demand at `now_s` (optional; feeds
  /// tenant_shares()).
  void observe_tenant(const std::string& tenant, double now_s, double demand);

  /// Workers the pool should have right now, clamped to
  /// [min_workers, max_workers].  Predictive mode sizes on
  /// max(current, forecast) so prediction only ever *adds* capacity ahead
  /// of demand — scale-down is handled by the idle cooldown, not the
  /// forecast.
  [[nodiscard]] std::size_t desired_workers() const;

  /// The demand the last desired_workers() decision was based on.
  [[nodiscard]] double planning_demand() const;
  [[nodiscard]] double current_demand() const;
  [[nodiscard]] double forecast_demand() const;

  /// Predicted per-tenant fair shares: each tenant's forecast demand,
  /// normalized to sum to 1 (empty map before any tenant observation;
  /// uniform when every forecast is 0).  Feed Scheduler::set_tenant_weight
  /// to shift slots toward tenants whose load is about to rise.
  [[nodiscard]] std::map<std::string, double> tenant_shares() const;

  /// True once demand has been at or below the scale-down watermark
  /// (desired < alive) continuously for scale_down_after_s.
  [[nodiscard]] bool scale_down_due(double now_s, std::size_t alive) const;
  /// Note a scale event (up or down) — resets the scale-down clock.
  void note_scaled(double now_s);

  [[nodiscard]] const AutoscaleConfig& config() const { return config_; }
  [[nodiscard]] std::size_t lead_steps() const;

 private:
  AutoscaleConfig config_;
  monitor::SeriesForecaster demand_;
  std::map<std::string, std::unique_ptr<monitor::SeriesForecaster>> tenants_;
  double current_ = 0.0;
  double last_scale_s_ = 0.0;
  mutable double below_since_s_ = -1.0;
};

}  // namespace pragma::res
