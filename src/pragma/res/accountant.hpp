// Per-run resource accounting and budget enforcement (ROADMAP item 3).
//
// Modeled on cctools' resource_monitor: every managed run (and worker
// slice) is attributed the CPU time, peak/steady memory, and checkpoint
// IO it consumes, sampled at the step/poll boundaries the run already
// visits for cancellation.  Accounts aggregate per run *and* per tenant,
// and the totals are exported through the obs metrics registry so a
// deployment can watch usage without touching the run loop.
//
// Enforcement closes the loop the paper's runtime-management story needs:
// a RunSpec may carry a ResourceBudget, and the account latches a
// violation the moment a charge crosses it.  Kill-action budgets make the
// run stop at its next cooperative boundary (exactly like a cancel, so
// the partial report stays internally consistent) and the scheduler sheds
// it with Status::resource_exhausted carrying the ladder's
// " [retry_after_ms=N]" hint; throttle-action budgets instead inflate the
// violator's modeled step time, slowing it without killing it.
//
// Determinism: a null account (the default everywhere) is byte-identical
// to the pre-accounting code — every hook is gated on a pointer check.
// CPU/memory/IO charges are *modeled* quantities from the deterministic
// execution model, so budget kills land on the same step at a fixed seed;
// only the optional wall_s budget reads the real clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pragma::res {

/// Per-run resource limits.  0 = unlimited for every dimension, so a
/// default-constructed budget enforces nothing (`any()` is false and no
/// account machinery runs).
struct ResourceBudget {
  /// What to do with a violator: kill sheds it with
  /// Status::resource_exhausted at the next cooperative boundary;
  /// throttle lets it finish but inflates its modeled step time.
  enum class Action { kKill, kThrottle };

  double cpu_s = 0.0;           ///< modeled CPU-seconds across the run
  std::uint64_t mem_bytes = 0;  ///< peak modeled memory footprint
  std::uint64_t io_bytes = 0;   ///< checkpoint/journal bytes written
  double wall_s = 0.0;          ///< real wall-clock seconds since dispatch
  Action action = Action::kKill;
  /// Step-time multiplier applied to a throttled run (> 1 slows it).
  double throttle_factor = 2.0;

  [[nodiscard]] bool any() const {
    return cpu_s > 0.0 || mem_bytes > 0 || io_bytes > 0 || wall_s > 0.0;
  }
};

/// Usage attributed to one run (or aggregated over a tenant).
struct ResourceUsage {
  double cpu_s = 0.0;
  std::uint64_t peak_mem_bytes = 0;
  double steady_mem_bytes = 0.0;  ///< exponentially-weighted mean footprint
  std::uint64_t io_bytes = 0;
  double wall_s = 0.0;
  std::uint64_t samples = 0;
};

class ResourceAccountant;

/// The account of one run in flight.  charge_*/sample_memory are called
/// from the run's executing thread at step boundaries; should_stop() is
/// the kill probe polled at the same boundaries (one relaxed atomic load
/// on the fast path).  Everything else may be read from other threads —
/// state is guarded by an internal mutex.
class RunAccount {
 public:
  RunAccount(std::string run, std::string tenant, ResourceBudget budget);

  /// Modeled CPU-seconds of one step (post-throttle, so accounting and
  /// the report agree on what the run cost).
  void charge_cpu(double seconds);
  /// Checkpoint/journal bytes durably written on the run's behalf.
  void charge_io(std::uint64_t bytes);
  /// Instantaneous modeled memory footprint at a step boundary.
  void sample_memory(std::uint64_t bytes);

  /// True once a kill-action budget is violated: the run should stop at
  /// its next cooperative boundary (like a cancel).
  [[nodiscard]] bool should_stop() const {
    return stop_.load(std::memory_order_relaxed);
  }
  /// True once a throttle-action budget is violated: the run's modeled
  /// step time is multiplied by budget().throttle_factor from then on.
  [[nodiscard]] bool throttled() const {
    return throttle_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool violated() const;
  /// "cpu budget 2s exceeded (used 2.4s)" — empty while within budget.
  [[nodiscard]] std::string violation() const;
  [[nodiscard]] ResourceUsage usage() const;
  [[nodiscard]] const ResourceBudget& budget() const { return budget_; }
  [[nodiscard]] const std::string& run_name() const { return run_; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

 private:
  friend class ResourceAccountant;
  /// Re-checks every dimension (including wall clock) and latches the
  /// action flag on first violation.  Requires mu_.
  void enforce_locked();
  [[nodiscard]] double wall_elapsed_s() const;

  const std::string run_;
  const std::string tenant_;
  const ResourceBudget budget_;
  const std::chrono::steady_clock::time_point opened_;

  mutable std::mutex mu_;
  ResourceUsage usage_;        // guarded by mu_
  std::string violation_;      // guarded by mu_; set once, never cleared
  std::atomic<bool> stop_{false};
  std::atomic<bool> throttle_{false};
};

/// Aggregate view of one tenant across every account opened for it.
struct TenantUsage {
  ResourceUsage usage;
  std::size_t runs = 0;       ///< accounts opened
  std::size_t kills = 0;      ///< kill-action budget violations
  std::size_t throttles = 0;  ///< throttle-action budget violations
};

/// Opens, tracks, and aggregates run accounts.  Thread-safe; designed to
/// be shared by a Scheduler and a DistributedService worker pool at once.
/// Aggregation is by tenant and in total, and the registry exports the
/// totals through obs metrics (res.* counters/gauges) on every close.
class ResourceAccountant {
 public:
  ResourceAccountant() = default;
  ResourceAccountant(const ResourceAccountant&) = delete;
  ResourceAccountant& operator=(const ResourceAccountant&) = delete;

  /// Find-or-create the account of run `run` (keyed by name, so a sliced
  /// or failed-over run keeps accumulating into one account across
  /// slices and workers).  The budget of the first open wins.
  [[nodiscard]] std::shared_ptr<RunAccount> open(const std::string& run,
                                                 const std::string& tenant,
                                                 const ResourceBudget& budget);

  /// Fold a finished run into its tenant aggregate and drop the live
  /// entry.  Idempotent: a second close of the same run is a no-op.
  void close(const std::shared_ptr<RunAccount>& account);

  [[nodiscard]] TenantUsage tenant_usage(const std::string& tenant) const;
  [[nodiscard]] std::vector<std::string> tenants() const;
  [[nodiscard]] ResourceUsage total() const;
  [[nodiscard]] std::size_t kills() const;
  [[nodiscard]] std::size_t throttles() const;
  [[nodiscard]] std::size_t open_accounts() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<RunAccount>> live_;
  std::map<std::string, TenantUsage> tenants_;
  ResourceUsage total_;
  std::size_t kills_ = 0;
  std::size_t throttles_ = 0;
};

}  // namespace pragma::res
