// Span tracer: nestable scoped spans exported as Chrome "Trace Event
// Format" JSON (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints, in order:
//   1. Disabled cost ~ zero.  A span site compiles to one relaxed atomic
//      load and a branch (see Span's constructor and PRAGMA_SPAN); no
//      clock read, no allocation, no lock.
//   2. Thread safety.  Spans record into per-thread buffers (the
//      partition kernels run on the shared ThreadPool); export snapshots
//      every buffer under its own mutex, so tracing never serializes the
//      instrumented threads against each other.
//   3. Valid nesting for free.  Spans are emitted as complete ("ph":"X")
//      events with wall-clock ts/dur; the viewer reconstructs the nesting
//      from containment per thread, so scoped RAII spans need no explicit
//      parent bookkeeping.
//
// Span names and categories are `const char*` by contract: sites pass
// string literals, the tracer stores the pointers.  Dynamic context goes
// through annotate(), which only materializes strings while tracing is on.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pragma::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// True when span collection is on.  Relaxed load: the flag is a sampling
/// switch, not a synchronization point.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// One completed span ("ph":"X" in the Trace Event Format).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  double ts_us = 0.0;   ///< start, microseconds since the tracer epoch
  double dur_us = 0.0;  ///< wall-clock duration in microseconds
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;  ///< raw key/values
};

/// Process-wide collector of spans.  All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Turn collection on/off.  Spans already buffered are kept.
  void set_enabled(bool on);

  /// Drop all buffered events (e.g. between test cases).
  void clear();

  /// Snapshot of every buffered event, across all threads, in no
  /// particular order (the viewer sorts by ts).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Render the Trace Event Format JSON document.
  [[nodiscard]] std::string export_json() const;
  /// Write export_json() to `path`; false when the file cannot be opened.
  bool write(const std::string& path) const;

  /// Microseconds since the tracer epoch (used by Span; exposed for tests).
  [[nodiscard]] static double now_us();

  /// Defined in tracer.cpp; public so the file-local registration helpers
  /// there can manage buffer lifetimes.
  struct ThreadBuffer;

 private:
  friend class Span;
  Tracer();
  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& local_buffer();
  void append(TraceEvent event);
};

/// RAII scoped span.  Constructing with tracing disabled is a branch on
/// one atomic flag; nothing else happens.  Annotations attach key/value
/// context that lands in the event's "args" object.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (!tracing_enabled()) return;
    begin(category, name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (armed_) end();
  }

  /// True when this span is actually recording (tracing was enabled at
  /// construction) — use to skip expensive annotation arguments.
  [[nodiscard]] bool active() const { return armed_; }

  void annotate(const char* key, std::string value);
  void annotate(const char* key, const char* value);
  void annotate(const char* key, double value);
  void annotate(const char* key, std::int64_t value);
  void annotate(const char* key, std::size_t value);

 private:
  void begin(const char* category, const char* name);
  void end();

  const char* category_ = nullptr;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  bool armed_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace pragma::obs

// Span site helpers.  PRAGMA_SPAN opens a scoped span for the rest of the
// enclosing block; PRAGMA_SPAN_VAR names the variable so the site can
// annotate it.
#define PRAGMA_OBS_CONCAT_INNER(a, b) a##b
#define PRAGMA_OBS_CONCAT(a, b) PRAGMA_OBS_CONCAT_INNER(a, b)
#define PRAGMA_SPAN(category, name) \
  ::pragma::obs::Span PRAGMA_OBS_CONCAT(pragma_obs_span_, __LINE__)( \
      (category), (name))
#define PRAGMA_SPAN_VAR(var, category, name) \
  ::pragma::obs::Span var((category), (name))
