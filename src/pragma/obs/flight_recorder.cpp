#include "pragma/obs/flight_recorder.hpp"

#include <iomanip>
#include <mutex>

#include "pragma/util/logging.hpp"

namespace pragma::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

struct FlightRecorder::Impl {
  mutable std::mutex mutex;
  std::vector<FlightEvent> ring;
  std::size_t capacity = 256;
  std::size_t head = 0;   ///< next write position
  std::size_t count = 0;  ///< events currently buffered (<= capacity)
  std::size_t total = 0;  ///< events ever recorded
};

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::Impl& FlightRecorder::impl() const {
  static Impl* impl = new Impl();  // leaked: usable during static teardown
  return *impl;
}

void FlightRecorder::set_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.capacity = capacity == 0 ? 1 : capacity;
  state.ring.clear();
  state.ring.shrink_to_fit();
  state.head = 0;
  state.count = 0;
}

std::size_t FlightRecorder::capacity() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.capacity;
}

void FlightRecorder::record(double sim_time_s, const char* category,
                            std::string detail) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  FlightEvent event{sim_time_s, category, std::move(detail)};
  if (state.ring.size() < state.capacity) {
    state.ring.push_back(std::move(event));
    state.head = state.ring.size() % state.capacity;
  } else {
    state.ring[state.head] = std::move(event);
    state.head = (state.head + 1) % state.capacity;
  }
  state.count = state.ring.size();
  ++state.total;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<FlightEvent> out;
  out.reserve(state.ring.size());
  // When the ring is full, `head` is the oldest element.
  const std::size_t n = state.ring.size();
  const std::size_t start = n < state.capacity ? 0 : state.head;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(state.ring[(start + i) % n]);
  return out;
}

std::size_t FlightRecorder::total_recorded() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.total;
}

std::string FlightRecorder::format() const {
  const std::vector<FlightEvent> snapshot = events();
  std::size_t total = total_recorded();
  std::ostringstream os;
  os << "flight recorder: " << snapshot.size() << " of " << total
     << " events";
  if (total > snapshot.size())
    os << " (" << total - snapshot.size() << " older events dropped)";
  os << "\n";
  os << std::fixed << std::setprecision(3);
  for (const FlightEvent& event : snapshot)
    os << "  [t=" << event.sim_time_s << "s] " << event.category << ": "
       << event.detail << "\n";
  return os.str();
}

void FlightRecorder::dump_to_log() const {
  const std::string text = format();
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    util::log_warn(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

void FlightRecorder::clear() {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.ring.clear();
  state.head = 0;
  state.count = 0;
  state.total = 0;
}

}  // namespace pragma::obs
