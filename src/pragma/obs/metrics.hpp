// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Like the tracer, the registry is off by default: Counter::add,
// Gauge::set and Histogram::observe first branch on one relaxed atomic
// flag and do nothing while metrics are disabled, so instrumented hot
// paths (message delivery, checkpoint writes, splitter kernels) pay a
// load+branch, not an atomic RMW.
//
// Metric objects are created on first lookup and never destroyed or
// re-allocated (reset() zeroes values in place), so call sites may cache
// references:
//
//   static obs::Counter& retries =
//       obs::metrics().counter("agents.reliable.retries");
//   retries.add();
//
// Histograms use fixed bucket bounds chosen at creation; quantiles are
// estimated by linear interpolation inside the containing bucket, and two
// histograms with identical bounds merge by bucket-wise addition (the
// shard-then-merge pattern for per-thread collection).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pragma::util {
class BenchJsonWriter;
}  // namespace pragma::util

namespace pragma::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;

/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS targets).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (queue depths, live-node counts, ...).
class Gauge {
 public:
  void set(double value) {
    if (!metrics_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket upper bounds, ascending and strictly increasing; an implicit
/// overflow bucket covers (bounds.back(), +inf).
struct HistogramOptions {
  std::vector<double> bounds;

  /// `count` buckets: start, start*factor, start*factor^2, ...
  [[nodiscard]] static HistogramOptions exponential(double start,
                                                    double factor, int count);
  /// `count` buckets of equal width from lo (exclusive) to hi (inclusive).
  [[nodiscard]] static HistogramOptions linear(double lo, double hi,
                                               int count);
};

/// Default bounds when none are given: 20 exponential buckets from 1e-6,
/// factor 4 — covers microseconds to ~1e6 with relative resolution.
[[nodiscard]] const HistogramOptions& default_histogram_options();

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options = default_histogram_options());

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket, clamped to the observed [min, max].  NaN when the
  /// histogram is empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Bucket-wise accumulate `other` into this histogram.  Both must share
  /// identical bounds (std::invalid_argument otherwise).  Unlike observe,
  /// merge is unconditional: merging shards must work while the global
  /// enable flag is off.
  void merge(const Histogram& other);
  void merge(const HistogramSnapshot& other);

  void reset();

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 entries; the last is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name -> metric map.  Lookups are mutex-guarded; returned references
/// stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void set_enabled(bool on);

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `options` applies only when the histogram is created by this call.
  Histogram& histogram(const std::string& name, HistogramOptions options =
                                                    default_histogram_options());

  /// One BenchJsonWriter entry per metric, sorted by name: counters emit
  /// {value}, gauges {value}, histograms {count,sum,min,max,p50,p90,p99}.
  void export_to(util::BenchJsonWriter& json) const;
  /// Export to a BENCH-schema JSON file; false when it cannot be opened.
  bool write(const std::string& path) const;

  /// Zero every metric in place (references stay valid).
  void reset();

  [[nodiscard]] std::size_t metric_count() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace pragma::obs
