// Flight recorder: a bounded ring of recent control-plane events.
//
// The tracer answers "where did the time go"; the recorder answers "what
// did the control plane just do" when something breaks.  Directives,
// acks, retries, heartbeat suspicions, checkpoint generations and
// partitioner selections are recorded with their *simulated* timestamp,
// and the last `capacity` of them can be dumped on demand — ManagedRun
// dumps automatically on failure confirmation and rollback recovery.
//
// Recording is off by default; PRAGMA_FLIGHT sites branch on one relaxed
// atomic flag and build no strings while disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace pragma::obs {

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

struct FlightEvent {
  double sim_time_s = 0.0;
  const char* category = "";  ///< static string: "directive", "retry", ...
  std::string detail;
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  void set_enabled(bool on);
  /// Resize the ring (drops buffered events).  Minimum capacity 1.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  void record(double sim_time_s, const char* category, std::string detail);

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  /// Events recorded since construction/clear (>= events().size()).
  [[nodiscard]] std::size_t total_recorded() const;

  /// Human-readable dump, one "[t=...s] category: detail" line per event,
  /// prefixed with a header noting how many events were dropped.
  [[nodiscard]] std::string format() const;
  /// format() through util::log_warn, line by line (so the dump lands in
  /// whatever sink the embedding configured).
  void dump_to_log() const;

  void clear();

 private:
  FlightRecorder() = default;
  struct Impl;
  Impl& impl() const;
};

namespace detail {
inline void flight_append(std::ostringstream&) {}
template <typename T, typename... Rest>
void flight_append(std::ostringstream& os, const T& value,
                   const Rest&... rest) {
  os << value;
  flight_append(os, rest...);
}

template <typename... Args>
void flight_record(double sim_time_s, const char* category,
                   const Args&... args) {
  std::ostringstream os;
  flight_append(os, args...);
  FlightRecorder::instance().record(sim_time_s, category, os.str());
}
}  // namespace detail

}  // namespace pragma::obs

/// Record a control-plane event: PRAGMA_FLIGHT(now, "retry", "seq ", seq).
/// Arguments after the category are streamed together; nothing is
/// evaluated while the recorder is disabled.
#define PRAGMA_FLIGHT(sim_time_s, category, ...)                          \
  do {                                                                    \
    if (::pragma::obs::flight_enabled())                                  \
      ::pragma::obs::detail::flight_record((sim_time_s), (category),      \
                                           __VA_ARGS__);                  \
  } while (0)
