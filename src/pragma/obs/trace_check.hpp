// Validator for exported Chrome Trace Event Format files.
//
// A self-contained JSON parser (objects, arrays, strings with escapes,
// numbers, true/false/null) plus structural checks over the parsed
// document: the root must be an object with a "traceEvents" array, every
// event needs a string "name"/"ph" (and numeric "ts"; complete "X" events
// also "dur" >= 0), and the caller can require specific categories to be
// present.  Used by the obs tests and by the tools/trace_check CI gate.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "pragma/util/status.hpp"

namespace pragma::obs {

/// Summary of a validated trace file.
struct TraceCheckReport {
  std::size_t event_count = 0;
  std::vector<std::string> categories;  ///< distinct "cat" values, sorted
  std::vector<std::string> threads;     ///< distinct tids, sorted as text
};

/// Parse `text` as JSON and verify it is a valid Trace Event Format
/// document.  Every category in `require_categories` must appear on at
/// least one event.  On success the report describes what was found.
[[nodiscard]] util::Expected<TraceCheckReport> validate_trace_json(
    std::string_view text,
    const std::vector<std::string>& require_categories = {});

/// Parse-only entry point: ok when `text` is well-formed JSON of any
/// shape.  Exposed so tests can check other emitted JSON artifacts (the
/// BENCH metrics files) with the same parser.
[[nodiscard]] util::Status check_json_wellformed(std::string_view text);

}  // namespace pragma::obs
