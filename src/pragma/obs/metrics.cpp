#include "pragma/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "pragma/util/table.hpp"

namespace pragma::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

HistogramOptions HistogramOptions::exponential(double start, double factor,
                                               int count) {
  if (!(start > 0.0) || !(factor > 1.0) || count < 1)
    throw std::invalid_argument("HistogramOptions::exponential: bad shape");
  HistogramOptions options;
  options.bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    options.bounds.push_back(bound);
    bound *= factor;
  }
  return options;
}

HistogramOptions HistogramOptions::linear(double lo, double hi, int count) {
  if (!(hi > lo) || count < 1)
    throw std::invalid_argument("HistogramOptions::linear: bad shape");
  HistogramOptions options;
  options.bounds.reserve(static_cast<std::size_t>(count));
  const double width = (hi - lo) / count;
  for (int i = 1; i <= count; ++i)
    options.bounds.push_back(lo + width * i);
  return options;
}

const HistogramOptions& default_histogram_options() {
  static const HistogramOptions options =
      HistogramOptions::exponential(1e-6, 4.0, 20);
  return options;
}

Histogram::Histogram(HistogramOptions options)
    : bounds_(std::move(options.bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i] > bounds_[i - 1]))
      throw std::invalid_argument("Histogram: bounds must ascend");
}

void Histogram::observe(double value) {
  if (!metrics_enabled()) return;
  if (std::isnan(value)) return;  // NaN is unbucketable; drop it
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  snap.count = count();
  snap.sum = sum();
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(lo) ? lo : 0.0;
  snap.max = std::isfinite(hi) ? hi : 0.0;
  return snap;
}

double Histogram::quantile(double q) const {
  const HistogramSnapshot snap = snapshot();
  if (snap.count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    const double in_bucket = static_cast<double>(snap.counts[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Interpolate within [lower, upper); clamp to the observed range so
      // sparse histograms do not report values never seen.
      const double lower = b == 0 ? snap.min : snap.bounds[b - 1];
      const double upper =
          b < snap.bounds.size() ? snap.bounds[b] : snap.max;
      const double fraction =
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, snap.min, snap.max);
    }
    cumulative += in_bucket;
  }
  return snap.max;
}

void Histogram::merge(const Histogram& other) { merge(other.snapshot()); }

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.bounds != bounds_)
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    buckets_[b].fetch_add(other.counts[b], std::memory_order_relaxed);
  count_.fetch_add(other.count, std::memory_order_relaxed);
  detail::atomic_add(sum_, other.sum);
  if (other.count > 0) {
    detail::atomic_min(min_, other.min);
    detail::atomic_max(max_, other.max);
  }
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked on purpose: metrics may be touched during static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

void MetricsRegistry::set_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions options) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto& slot = state.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(options));
  return *slot;
}

void MetricsRegistry::export_to(util::BenchJsonWriter& json) const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& [name, counter] : state.counters)
    json.entry(name).field("value", counter->value());
  for (const auto& [name, gauge] : state.gauges)
    json.entry(name).field("value", gauge->value(), 6);
  for (const auto& [name, histogram] : state.histograms) {
    const HistogramSnapshot snap = histogram->snapshot();
    json.entry(name)
        .field("count", static_cast<std::size_t>(snap.count))
        .field("sum", snap.sum, 6)
        .field("min", snap.min, 6)
        .field("max", snap.max, 6)
        .field("p50", histogram->quantile(0.50), 6)
        .field("p90", histogram->quantile(0.90), 6)
        .field("p99", histogram->quantile(0.99), 6);
  }
}

bool MetricsRegistry::write(const std::string& path) const {
  util::BenchJsonWriter json;
  export_to(json);
  return json.write(path);
}

void MetricsRegistry::reset() {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter->reset();
  for (auto& [name, gauge] : state.gauges) gauge->reset();
  for (auto& [name, histogram] : state.histograms) histogram->reset();
}

std::size_t MetricsRegistry::metric_count() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.counters.size() + state.gauges.size() +
         state.histograms.size();
}

}  // namespace pragma::obs
