#include "pragma/obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <variant>
#include <vector>

namespace pragma::obs {

namespace {

// ---- Minimal JSON document model and recursive-descent parser -------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      data = nullptr;

  [[nodiscard]] const JsonObject* as_object() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&data);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* as_array() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&data);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const std::string* as_string() const {
    return std::get_if<std::string>(&data);
  }
  [[nodiscard]] const double* as_number() const {
    return std::get_if<double>(&data);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  util::Expected<JsonValue> parse() {
    JsonValue value;
    util::Status status = parse_value(value, 0);
    if (!status.is_ok()) return status;
    skip_whitespace();
    if (pos_ != text_.size())
      return fail("trailing garbage after the JSON document");
    return value;
  }

 private:
  /// Hostile-input guard: a parser over untrusted bytes must not recurse
  /// without bound (see util::Status conventions).
  static constexpr int kMaxDepth = 64;

  util::Status fail(const std::string& what) const {
    return util::Status::invalid(what + " at byte " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Status parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than the cap");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string text;
      util::Status status = parse_string(text);
      if (!status.is_ok()) return status;
      out.data = std::move(text);
      return util::Status::ok();
    }
    if (c == 't' || c == 'f') return parse_keyword(out, c == 't');
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return fail("bad keyword");
      pos_ += 4;
      out.data = nullptr;
      return util::Status::ok();
    }
    return parse_number(out);
  }

  util::Status parse_keyword(JsonValue& out, bool value) {
    const std::string_view keyword = value ? "true" : "false";
    if (text_.substr(pos_, keyword.size()) != keyword)
      return fail("bad keyword");
    pos_ += keyword.size();
    out.data = value;
    return util::Status::ok();
  }

  util::Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value))
      return util::Status::invalid("malformed number '" + token +
                                   "' at byte " + std::to_string(start));
    out.data = value;
    return util::Status::ok();
  }

  util::Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return util::Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8; surrogate pairs are passed through unpaired
          // (good enough for a validator — the tracer never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  util::Status parse_array(JsonValue& out, int depth) {
    consume('[');
    auto array = std::make_shared<JsonArray>();
    skip_whitespace();
    if (consume(']')) {
      out.data = std::move(array);
      return util::Status::ok();
    }
    while (true) {
      JsonValue element;
      util::Status status = parse_value(element, depth + 1);
      if (!status.is_ok()) return status;
      array->push_back(std::move(element));
      skip_whitespace();
      if (consume(']')) break;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
    out.data = std::move(array);
    return util::Status::ok();
  }

  util::Status parse_object(JsonValue& out, int depth) {
    consume('{');
    auto object = std::make_shared<JsonObject>();
    skip_whitespace();
    if (consume('}')) {
      out.data = std::move(object);
      return util::Status::ok();
    }
    while (true) {
      skip_whitespace();
      std::string key;
      util::Status status = parse_string(key);
      if (!status.is_ok()) return status;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      status = parse_value(value, depth + 1);
      if (!status.is_ok()) return status;
      (*object)[std::move(key)] = std::move(value);
      skip_whitespace();
      if (consume('}')) break;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
    out.data = std::move(object);
    return util::Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Status check_json_wellformed(std::string_view text) {
  util::Expected<JsonValue> result = JsonParser(text).parse();
  return result ? util::Status::ok() : result.status();
}

util::Expected<TraceCheckReport> validate_trace_json(
    std::string_view text,
    const std::vector<std::string>& require_categories) {
  util::Expected<JsonValue> document = JsonParser(text).parse();
  if (!document) return document.status();

  const JsonObject* root = document.value().as_object();
  if (root == nullptr)
    return util::Status::invalid("trace root must be a JSON object");
  const auto events_it = root->find("traceEvents");
  if (events_it == root->end())
    return util::Status::invalid("missing 'traceEvents'");
  const JsonArray* events = events_it->second.as_array();
  if (events == nullptr)
    return util::Status::invalid("'traceEvents' must be an array");

  TraceCheckReport report;
  std::set<std::string> categories;
  std::set<std::string> threads;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonObject* event = (*events)[i].as_object();
    const std::string where = "event " + std::to_string(i);
    if (event == nullptr)
      return util::Status::invalid(where + " is not an object");
    const auto field = [&](const char* key) -> const JsonValue* {
      const auto it = event->find(key);
      return it == event->end() ? nullptr : &it->second;
    };
    const JsonValue* name = field("name");
    if (name == nullptr || name->as_string() == nullptr)
      return util::Status::invalid(where + " lacks a string 'name'");
    const JsonValue* ph = field("ph");
    if (ph == nullptr || ph->as_string() == nullptr)
      return util::Status::invalid(where + " lacks a string 'ph'");
    const JsonValue* ts = field("ts");
    if (ts == nullptr || ts->as_number() == nullptr)
      return util::Status::invalid(where + " lacks a numeric 'ts'");
    if (*ph->as_string() == "X") {
      const JsonValue* dur = field("dur");
      if (dur == nullptr || dur->as_number() == nullptr ||
          *dur->as_number() < 0.0)
        return util::Status::invalid(where +
                                     " is 'X' without a valid 'dur'");
    }
    if (const JsonValue* cat = field("cat"); cat && cat->as_string())
      categories.insert(*cat->as_string());
    if (const JsonValue* tid = field("tid"); tid && tid->as_number())
      threads.insert(std::to_string(
          static_cast<long long>(*tid->as_number())));
    ++report.event_count;
  }

  for (const std::string& required : require_categories)
    if (categories.find(required) == categories.end())
      return util::Status::failed_precondition(
          "required category '" + required + "' absent from the trace");

  report.categories.assign(categories.begin(), categories.end());
  report.threads.assign(threads.begin(), threads.end());
  return report;
}

}  // namespace pragma::obs
