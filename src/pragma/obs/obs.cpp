#include "pragma/obs/obs.hpp"

#include <cstdlib>
#include <string>

#include "pragma/util/cli.hpp"

namespace pragma::obs {

namespace {

bool env_truthy(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string text(value);
  return !(text == "0" || text == "false" || text == "off" || text == "no");
}

std::string env_string(const char* name, std::string fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace

void apply(const ObsConfig& config) {
  if (config.tracing) Tracer::instance().set_enabled(true);
  if (config.metrics) MetricsRegistry::instance().set_enabled(true);
  if (config.flight) {
    FlightRecorder& recorder = FlightRecorder::instance();
    if (recorder.capacity() != config.flight_capacity)
      recorder.set_capacity(config.flight_capacity);
    recorder.set_enabled(true);
  }
}

ObsConfig config_from_env(ObsConfig base) {
  base.tracing = env_truthy("PRAGMA_OBS_TRACE", base.tracing);
  base.metrics = env_truthy("PRAGMA_OBS_METRICS", base.metrics);
  base.flight = env_truthy("PRAGMA_OBS_FLIGHT", base.flight);
  base.trace_path = env_string("PRAGMA_OBS_TRACE_PATH", base.trace_path);
  base.metrics_path =
      env_string("PRAGMA_OBS_METRICS_PATH", base.metrics_path);
  if (const char* capacity = std::getenv("PRAGMA_OBS_FLIGHT_CAPACITY");
      capacity != nullptr && *capacity != '\0') {
    const long value = std::strtol(capacity, nullptr, 10);
    if (value > 0) base.flight_capacity = static_cast<std::size_t>(value);
  }
  return base;
}

void add_cli_flags(util::CliFlags& flags) {
  flags.add_bool("obs-trace", false,
                 "record spans and export chrome://tracing JSON");
  flags.add_string("obs-trace-path", "pragma-trace.json",
                   "trace export path");
  flags.add_bool("obs-metrics", false,
                 "collect metrics and export BENCH-schema JSON");
  flags.add_string("obs-metrics-path", "pragma-metrics.json",
                   "metrics export path");
  flags.add_bool("obs-flight", false,
                 "record control-plane events in the flight recorder");
  flags.add_int("obs-flight-capacity", 256, "flight recorder ring size");
}

ObsConfig config_from_flags(const util::CliFlags& flags, ObsConfig base) {
  if (flags.get_bool("obs-trace")) base.tracing = true;
  if (flags.get_bool("obs-metrics")) base.metrics = true;
  if (flags.get_bool("obs-flight")) base.flight = true;
  if (const std::string& path = flags.get_string("obs-trace-path");
      path != "pragma-trace.json")
    base.trace_path = path;
  if (const std::string& path = flags.get_string("obs-metrics-path");
      path != "pragma-metrics.json")
    base.metrics_path = path;
  if (const long long capacity = flags.get_int("obs-flight-capacity");
      capacity > 0 && capacity != 256)
    base.flight_capacity = static_cast<std::size_t>(capacity);
  return base;
}

std::vector<std::string> export_artifacts(const ObsConfig& config) {
  std::vector<std::string> lines;
  if (config.tracing) {
    const Tracer& tracer = Tracer::instance();
    if (tracer.write(config.trace_path))
      lines.push_back("wrote " + config.trace_path + " (" +
                      std::to_string(tracer.event_count()) + " spans)");
    else
      lines.push_back("could not write " + config.trace_path);
  }
  if (config.metrics) {
    const MetricsRegistry& registry = MetricsRegistry::instance();
    if (registry.write(config.metrics_path))
      lines.push_back("wrote " + config.metrics_path + " (" +
                      std::to_string(registry.metric_count()) + " metrics)");
    else
      lines.push_back("could not write " + config.metrics_path);
  }
  return lines;
}

}  // namespace pragma::obs
