// Observability facade: one config struct gating the tracer, the metrics
// registry and the flight recorder, with env-var and CLI wiring.
//
// Everything is off by default.  ObsConfig is carried inside
// core::ManagedRunConfig / core::TraceRunConfig and *applied* when the
// runtime object is constructed; apply() only ever turns facilities ON
// (merge-enable), so a default-constructed config embedded in a run never
// clobbers an obs setup the embedding process enabled globally.
//
// Knobs (CLI flag / environment variable):
//   --obs-trace            PRAGMA_OBS_TRACE=1        span tracer
//   --obs-trace-path=P     PRAGMA_OBS_TRACE_PATH=P   export path
//   --obs-metrics          PRAGMA_OBS_METRICS=1      metrics registry
//   --obs-metrics-path=P   PRAGMA_OBS_METRICS_PATH=P export path
//   --obs-flight           PRAGMA_OBS_FLIGHT=1       flight recorder
//   --obs-flight-capacity  PRAGMA_OBS_FLIGHT_CAPACITY=N  ring size
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pragma/obs/flight_recorder.hpp"
#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"

namespace pragma::util {
class CliFlags;
}  // namespace pragma::util

namespace pragma::obs {

struct ObsConfig {
  bool tracing = false;
  bool metrics = false;
  bool flight = false;
  std::size_t flight_capacity = 256;
  std::string trace_path = "pragma-trace.json";
  std::string metrics_path = "pragma-metrics.json";

  [[nodiscard]] bool any() const { return tracing || metrics || flight; }
};

/// Turn on every facility the config requests (never turns one off).
void apply(const ObsConfig& config);

/// Overlay the PRAGMA_OBS_* environment variables onto `base`.
[[nodiscard]] ObsConfig config_from_env(ObsConfig base = {});

/// Register the --obs-* flags on a CliFlags set.
void add_cli_flags(util::CliFlags& flags);

/// Read the --obs-* flags back (layered over `base`, which callers will
/// usually have pre-filled with config_from_env so env and CLI compose).
[[nodiscard]] ObsConfig config_from_flags(const util::CliFlags& flags,
                                          ObsConfig base = {});

/// Write the configured artifacts (trace JSON, metrics JSON) for every
/// facility that is enabled.  Returns one human-readable line per file
/// written or failed; prints nothing itself, so callers choose the stream
/// (examples send these to stderr to keep stdout byte-stable).
[[nodiscard]] std::vector<std::string> export_artifacts(
    const ObsConfig& config);

}  // namespace pragma::obs
