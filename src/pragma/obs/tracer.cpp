#include "pragma/obs/tracer.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace pragma::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point tracer_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Escape a string for a JSON string literal (quotes not included).
void json_escape_to(std::ostringstream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

/// One thread's span buffer.  The owner thread appends under `mutex`
/// (uncontended except during an export); the tracer snapshots it from
/// other threads under the same mutex.  When a thread exits, its buffer is
/// retired into the tracer's global list so the events survive.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

namespace {

/// Global tracer state, kept out of the header.  Leaked on purpose: spans
/// may be recorded from thread-exit paths after static destruction starts.
struct TracerState {
  std::mutex mutex;
  std::vector<Tracer::ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  std::uint32_t next_tid = 1;
};

TracerState& state() {
  static TracerState* s = new TracerState();
  return *s;
}

/// Registers with the tracer on construction, retires on thread exit.
struct ThreadBufferHandle {
  ThreadBufferHandle() : buffer(new Tracer::ThreadBuffer()) {
    TracerState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    buffer->tid = s.next_tid++;
    s.live.push_back(buffer);
  }
  ~ThreadBufferHandle() {
    TracerState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      for (TraceEvent& event : buffer->events)
        s.retired.push_back(std::move(event));
      buffer->events.clear();
    }
    std::erase(s.live, buffer);
    delete buffer;
  }
  Tracer::ThreadBuffer* buffer;
};

}  // namespace

Tracer::Tracer() { (void)tracer_epoch(); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   tracer_epoch())
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBufferHandle handle;
  return *handle.buffer;
}

void Tracer::append(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

void Tracer::clear() {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.retired.clear();
  for (ThreadBuffer* buffer : s.live) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> Tracer::events() const {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<TraceEvent> out = s.retired;
  for (ThreadBuffer* buffer : s.live) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::size_t Tracer::event_count() const {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t count = s.retired.size();
  for (ThreadBuffer* buffer : s.live) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string Tracer::export_json() const {
  const std::vector<TraceEvent> snapshot = events();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    json_escape_to(os, event.name ? event.name : "?");
    os << "\",\"cat\":\"";
    json_escape_to(os, event.category ? event.category : "?");
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid
       << ",\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us;
    if (!event.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"";
        json_escape_to(os, key);
        os << "\":\"";
        json_escape_to(os, value);
        os << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool Tracer::write(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string text = export_json();
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(file);
}

void Span::begin(const char* category, const char* name) {
  category_ = category;
  name_ = name;
  start_us_ = Tracer::now_us();
  armed_ = true;
}

void Span::end() {
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_us = start_us_;
  event.dur_us = Tracer::now_us() - start_us_;
  event.args = std::move(args_);
  Tracer::instance().append(std::move(event));
  armed_ = false;
}

void Span::annotate(const char* key, std::string value) {
  if (!armed_) return;
  args_.emplace_back(key, std::move(value));
}

void Span::annotate(const char* key, const char* value) {
  if (!armed_) return;
  args_.emplace_back(key, value);
}

void Span::annotate(const char* key, double value) {
  if (!armed_) return;
  std::ostringstream os;
  os << value;
  args_.emplace_back(key, os.str());
}

void Span::annotate(const char* key, std::int64_t value) {
  if (!armed_) return;
  args_.emplace_back(key, std::to_string(value));
}

void Span::annotate(const char* key, std::size_t value) {
  if (!armed_) return;
  args_.emplace_back(key, std::to_string(value));
}

}  // namespace pragma::obs
