#include "pragma/grid/failure.hpp"

namespace pragma::grid {

FailureInjector::FailureInjector(sim::Simulator& simulator, Cluster& cluster)
    : simulator_(simulator), cluster_(cluster) {}

void FailureInjector::schedule_failure(sim::SimTime at, NodeId node,
                                       double downtime_s) {
  simulator_.schedule_at(at, [this, node, downtime_s] {
    apply(node, false);
    if (downtime_s >= 0.0)
      simulator_.schedule(downtime_s, [this, node] { apply(node, true); });
  });
}

void FailureInjector::start_random(double mtbf_s, double mttr_s,
                                   util::Rng rng) {
  if (random_active_) return;  // one chain per node, never two
  mtbf_s_ = mtbf_s;
  mttr_s_ = mttr_s;
  rng_ = rng;
  random_active_ = true;
  for (NodeId id = 0; id < cluster_.size(); ++id) arm_random_failure(id);
}

void FailureInjector::arm_random_failure(NodeId node) {
  const double wait = rng_.exponential(1.0 / mtbf_s_);
  simulator_.schedule(wait, [this, node] {
    if (!random_active_) return;
    apply(node, false);
    const double downtime = rng_.exponential(1.0 / mttr_s_);
    simulator_.schedule(downtime, [this, node] {
      if (!random_active_) return;
      apply(node, true);
      arm_random_failure(node);
    });
  });
}

void FailureInjector::apply(NodeId node, bool up) {
  // Idempotence guard: a failure for an already-down node (or a scheduled
  // recovery for a node that was manually recovered) must not record a
  // duplicate transition or re-notify the observer.
  if (cluster_.node(node).state().up == up) return;
  cluster_.node(node).state().up = up;
  const FailureEvent event{simulator_.now(), node, up};
  history_.push_back(event);
  if (observer_) observer_(event);
}

}  // namespace pragma::grid
