#include "pragma/grid/loadgen.hpp"

#include <algorithm>
#include <cmath>

namespace pragma::grid {

LoadGenerator::LoadGenerator(sim::Simulator& simulator, Cluster& cluster,
                             LoadGeneratorConfig config, util::Rng rng)
    : simulator_(simulator),
      cluster_(cluster),
      config_(config),
      rng_(rng),
      burst_until_(cluster.size(), -1.0) {
  node_targets_.reserve(cluster_.size());
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    // Spread long-run means across nodes: target = mean * (1 + bias) with
    // bias uniform in [-spread, +spread], clamped to a sane range.
    const double bias = rng_.uniform(-config_.node_bias_spread,
                                     config_.node_bias_spread);
    node_targets_.push_back(
        std::clamp(config_.mean_cpu_load * (1.0 + bias), 0.0, 0.9));
  }
}

void LoadGenerator::start() {
  if (running_) return;
  running_ = true;
  tick_ = simulator_.schedule_periodic(config_.update_period_s,
                                       [this] { update(); },
                                       /*first_delay=*/0.0);
}

void LoadGenerator::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(tick_);
}

void LoadGenerator::update() {
  const double now = simulator_.now();
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    Node& node = cluster_.node(static_cast<NodeId>(i));
    NodeState& state = node.state();

    // Mean-reverting random walk toward this node's long-run target.
    double load = state.background_load;
    load += config_.reversion * (node_targets_[i] - load);
    load += rng_.normal(0.0, config_.volatility);

    // Heavy-tailed bursts: a competing job arrives and occupies the node.
    if (burst_until_[i] > now) {
      load += config_.burst_load;
    } else if (rng_.bernoulli(config_.burst_probability)) {
      const double duration =
          rng_.pareto(config_.burst_duration_s / 3.0, 1.5);
      burst_until_[i] = now + std::min(duration, 20.0 * config_.burst_duration_s);
      load += config_.burst_load;
    }
    state.background_load = std::clamp(load, 0.0, 0.95);

    // Memory pressure loosely tracks CPU load with noise.
    state.memory_pressure = std::clamp(
        0.5 * state.background_load + rng_.normal(0.05, 0.02), 0.0, 0.9);

    // Link background utilization: mean-reverting around the configured
    // mean, bursty when the node itself is bursting.
    LinkState& link = cluster_.uplink(static_cast<NodeId>(i)).state();
    double util = link.background_utilization;
    util += config_.reversion * (config_.mean_link_utilization - util);
    util += rng_.normal(0.0, config_.volatility * 0.5);
    if (burst_until_[i] > now) util += 0.2;
    link.background_utilization = std::clamp(util, 0.0, 0.9);
  }
}

}  // namespace pragma::grid
