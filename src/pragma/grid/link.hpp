// Network-link model for the simulated grid testbed.
//
// Each node connects to a central switch through a full-duplex uplink;
// node-to-node transfers traverse two links plus the switch.  Links carry a
// dynamic background-traffic fraction mutated by the load generator and
// sampled by bandwidth sensors (the NWS analogue).
#pragma once

#include <cstdint>

namespace pragma::grid {

/// Static description of a link.
struct LinkSpec {
  /// Raw capacity in megabits per second (the paper's cluster uses 100 Mb/s
  /// fast Ethernet).
  double bandwidth_mbps = 100.0;
  /// One-way propagation + protocol latency in seconds.
  double latency_s = 100e-6;
};

/// Dynamic link state.
struct LinkState {
  /// Fraction of capacity consumed by background traffic, in [0, 1).
  double background_utilization = 0.0;
  bool up = true;
};

class Link {
 public:
  Link() = default;
  explicit Link(LinkSpec spec) : spec_(spec) {}

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }
  [[nodiscard]] LinkState& state() { return state_; }
  [[nodiscard]] const LinkState& state() const { return state_; }

  /// Bytes/second available to the application right now.
  [[nodiscard]] double effective_bytes_per_s() const {
    if (!state_.up) return 0.0;
    return spec_.bandwidth_mbps * 1.0e6 / 8.0 *
           (1.0 - state_.background_utilization);
  }

  /// Seconds to move `bytes` across this link (latency + serialization).
  /// Returns +inf when the link is down.
  [[nodiscard]] double transfer_time(double bytes) const;

 private:
  LinkSpec spec_;
  LinkState state_;
};

}  // namespace pragma::grid
