#include "pragma/grid/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pragma::grid {

double Node::compute_time(double gflop) const {
  const double speed = effective_gflops();
  if (speed <= 0.0) return std::numeric_limits<double>::infinity();
  return gflop / speed;
}

double Link::transfer_time(double bytes) const {
  if (!state_.up) return std::numeric_limits<double>::infinity();
  const double rate = effective_bytes_per_s();
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return spec_.latency_s + bytes / rate;
}

Cluster::Cluster(std::vector<Node> nodes, std::vector<Link> links,
                 SwitchSpec fabric)
    : nodes_(std::move(nodes)), links_(std::move(links)), fabric_(fabric) {
  if (nodes_.size() != links_.size())
    throw std::invalid_argument("Cluster: one uplink per node required");
}

double Cluster::transfer_time(NodeId src, NodeId dst, double bytes) const {
  if (src == dst) return 0.0;
  const double up = links_.at(src).transfer_time(bytes);
  const double down = links_.at(dst).transfer_time(bytes);
  // Store-and-forward through the switch: both link serializations count,
  // plus the fabric's forwarding latency.
  double total = up + down + fabric_.forwarding_latency_s;
  // Inter-site transfers additionally traverse the WAN.
  if (has_wan_ && !same_site(src, dst)) total += wan_.transfer_time(bytes);
  return total;
}

double Cluster::path_bandwidth(NodeId src, NodeId dst) const {
  if (src == dst) return std::numeric_limits<double>::infinity();
  double bw = std::min(links_.at(src).effective_bytes_per_s(),
                       links_.at(dst).effective_bytes_per_s());
  if (has_wan_ && !same_site(src, dst))
    bw = std::min(bw, wan_.effective_bytes_per_s());
  return bw;
}

double Cluster::total_effective_gflops() const {
  double total = 0.0;
  for (const Node& node : nodes_) total += node.effective_gflops();
  return total;
}

std::size_t Cluster::up_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.state().up; }));
}

Cluster ClusterBuilder::homogeneous(std::size_t n, double peak_gflops,
                                    double memory_mib, double bandwidth_mbps,
                                    double latency_s,
                                    const std::string& arch) {
  std::vector<Node> nodes;
  std::vector<Link> links;
  nodes.reserve(n);
  links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec spec;
    spec.id = static_cast<NodeId>(i);
    spec.name = arch + "-" + std::to_string(i);
    spec.peak_gflops = peak_gflops;
    spec.memory_mib = memory_mib;
    spec.arch = arch;
    nodes.emplace_back(std::move(spec));
    links.emplace_back(LinkSpec{bandwidth_mbps, latency_s});
  }
  return Cluster(std::move(nodes), std::move(links), SwitchSpec{});
}

Cluster ClusterBuilder::heterogeneous(std::size_t n, util::Rng& rng,
                                      double base_gflops, double memory_mib,
                                      double bandwidth_mbps, double latency_s,
                                      double spread, const std::string& arch) {
  // Log-normal multiplier with unit median and coefficient of variation
  // approximately `spread`.
  const double sigma = std::sqrt(std::log1p(spread * spread));
  std::vector<Node> nodes;
  std::vector<Link> links;
  nodes.reserve(n);
  links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec spec;
    spec.id = static_cast<NodeId>(i);
    spec.name = arch + "-" + std::to_string(i);
    spec.peak_gflops = base_gflops * rng.lognormal(0.0, sigma);
    spec.memory_mib = memory_mib * rng.lognormal(0.0, sigma * 0.5);
    spec.arch = arch;
    nodes.emplace_back(std::move(spec));
    links.emplace_back(LinkSpec{bandwidth_mbps, latency_s});
  }
  SwitchSpec fabric;
  fabric.forwarding_latency_s = 50e-6;  // commodity Ethernet switch
  return Cluster(std::move(nodes), std::move(links), fabric);
}

Cluster ClusterBuilder::federated(std::size_t sites,
                                  std::size_t nodes_per_site,
                                  double peak_gflops,
                                  double lan_bandwidth_mbps,
                                  double wan_bandwidth_mbps,
                                  double wan_latency_s) {
  std::vector<Node> nodes;
  std::vector<Link> links;
  nodes.reserve(sites * nodes_per_site);
  links.reserve(sites * nodes_per_site);
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t i = 0; i < nodes_per_site; ++i) {
      NodeSpec spec;
      spec.id = static_cast<NodeId>(nodes.size());
      spec.name =
          "site" + std::to_string(s) + "-node" + std::to_string(i);
      spec.peak_gflops = peak_gflops;
      spec.site = static_cast<int>(s);
      nodes.emplace_back(std::move(spec));
      links.emplace_back(LinkSpec{lan_bandwidth_mbps, 50e-6});
    }
  }
  Cluster cluster(std::move(nodes), std::move(links), SwitchSpec{});
  cluster.set_wan(Link(LinkSpec{wan_bandwidth_mbps, wan_latency_s}));
  return cluster;
}

}  // namespace pragma::grid
