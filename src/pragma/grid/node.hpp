// Compute-node model for the simulated grid testbed.
//
// A node has a static specification (peak speed, memory, architecture tag)
// and a dynamic state (background load from other grid users, available
// memory, up/down).  The synthetic load generator mutates the dynamic state
// over simulated time; monitors sample it; the execution model charges
// compute time against the *effective* speed.
#pragma once

#include <cstdint>
#include <string>

namespace pragma::grid {

using NodeId = std::uint32_t;

/// Static description of a compute node.
struct NodeSpec {
  NodeId id = 0;
  std::string name;
  /// Peak floating-point rate in Gflop/s used to convert work units to time.
  double peak_gflops = 1.0;
  /// Physical memory in MiB.
  double memory_mib = 1024.0;
  /// Architecture tag consumed by policies ("sp2", "linux-cluster", ...).
  std::string arch = "linux-cluster";
  /// Grid site this node belongs to (federated configurations; transfers
  /// between different sites traverse the WAN link).
  int site = 0;
};

/// Dynamic, time-varying node state.
struct NodeState {
  /// Fraction of the CPU consumed by competing (background) work, in [0, 1).
  double background_load = 0.0;
  /// Fraction of memory consumed by competing work, in [0, 1).
  double memory_pressure = 0.0;
  /// False while the node is failed.
  bool up = true;
};

/// A node: spec + mutable state.
class Node {
 public:
  Node() = default;
  explicit Node(NodeSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] NodeState& state() { return state_; }
  [[nodiscard]] const NodeState& state() const { return state_; }

  /// Gflop/s available to the application right now.
  [[nodiscard]] double effective_gflops() const {
    if (!state_.up) return 0.0;
    return spec_.peak_gflops * (1.0 - state_.background_load);
  }

  /// MiB of memory available to the application right now.
  [[nodiscard]] double available_memory_mib() const {
    if (!state_.up) return 0.0;
    return spec_.memory_mib * (1.0 - state_.memory_pressure);
  }

  /// Seconds to execute `gflop` units of work at current effective speed.
  /// Returns +inf when the node is down or fully loaded.
  [[nodiscard]] double compute_time(double gflop) const;

 private:
  NodeSpec spec_;
  NodeState state_;
};

}  // namespace pragma::grid
