// Failure injection for the simulated grid.
//
// Pragma's control network must "respond to system failures"; this component
// schedules node-down / node-up events so that agent tests and examples can
// exercise migration and repartitioning on failure.
#pragma once

#include <functional>
#include <vector>

#include "pragma/grid/cluster.hpp"
#include "pragma/sim/simulator.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::grid {

struct FailureEvent {
  sim::SimTime time;
  NodeId node;
  bool up;  // true = recovery, false = failure
};

/// Injects failures into a cluster, either from an explicit schedule or from
/// a random exponential process.  An observer callback fires on each change
/// (the agent control network subscribes to this).
class FailureInjector {
 public:
  using Observer = std::function<void(const FailureEvent&)>;

  FailureInjector(sim::Simulator& simulator, Cluster& cluster);

  /// Fail `node` at absolute time `at`, recover after `downtime` seconds
  /// (no recovery if downtime < 0).
  void schedule_failure(sim::SimTime at, NodeId node, double downtime_s);

  /// Start a random failure process: each node independently fails with the
  /// given MTBF (exponential), staying down for `mttr_s` mean seconds.
  /// Re-entrant calls while the process is active are ignored (arming a
  /// second chain per node would double the failure rate).
  void start_random(double mtbf_s, double mttr_s, util::Rng rng);

  /// Stop the random process; already-scheduled events become no-ops.
  void stop_random() { random_active_ = false; }
  [[nodiscard]] bool random_active() const { return random_active_; }

  /// Manually fail / recover a node now.  No-ops (no history entry, no
  /// observer call) when the node is already in the requested state, so a
  /// scheduled recovery racing a manual one cannot double-apply.
  void fail_now(NodeId node) { apply(node, false); }
  void recover_now(NodeId node) { apply(node, true); }

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] const std::vector<FailureEvent>& history() const {
    return history_;
  }

 private:
  void apply(NodeId node, bool up);
  void arm_random_failure(NodeId node);

  sim::Simulator& simulator_;
  Cluster& cluster_;
  Observer observer_;
  std::vector<FailureEvent> history_;
  double mtbf_s_ = 0.0;
  double mttr_s_ = 0.0;
  util::Rng rng_;
  bool random_active_ = false;
};

}  // namespace pragma::grid
