// Synthetic load generator.
//
// The paper's Table 5 experiment "consisted of a synthetic load generator
// (for simulating heterogeneous loads on the cluster nodes) and an external
// resource monitoring system".  This component reproduces that generator:
// per-node background CPU load follows a bounded mean-reverting random walk
// with heavy-tailed on/off bursts, and per-link background traffic follows a
// similar process.  All mutations run as events on the shared Simulator so
// that monitors observe a time-varying environment.
#pragma once

#include <cstddef>
#include <vector>

#include "pragma/grid/cluster.hpp"
#include "pragma/sim/simulator.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::grid {

struct LoadGeneratorConfig {
  /// Seconds between load updates.
  double update_period_s = 1.0;
  /// Long-run mean background CPU load per node, in [0, 1).
  double mean_cpu_load = 0.30;
  /// Mean-reversion strength per update (0 = pure random walk).
  double reversion = 0.15;
  /// Per-update random step standard deviation.
  double volatility = 0.08;
  /// Probability per update that a heavy burst starts on a node.
  double burst_probability = 0.01;
  /// Burst magnitude added to the load (clamped below 0.95).
  double burst_load = 0.45;
  /// Mean burst duration in seconds (Pareto-distributed, shape 1.5).
  double burst_duration_s = 20.0;
  /// Long-run mean background link utilization, in [0, 1).
  double mean_link_utilization = 0.10;
  /// Per-node scaling of mean load; >0 spreads mean loads across nodes so
  /// that some nodes are persistently busier (heterogeneous *load*, on top
  /// of heterogeneous *capacity*).
  double node_bias_spread = 0.5;
};

/// Drives background load on every node/link of a Cluster.
class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& simulator, Cluster& cluster,
                LoadGeneratorConfig config, util::Rng rng);

  /// Begin generating load (schedules the periodic update).
  void start();
  /// Stop generating load.
  void stop();

  [[nodiscard]] const LoadGeneratorConfig& config() const { return config_; }

  /// Per-node long-run target loads (after bias spreading), for tests.
  [[nodiscard]] const std::vector<double>& node_targets() const {
    return node_targets_;
  }

 private:
  void update();

  sim::Simulator& simulator_;
  Cluster& cluster_;
  LoadGeneratorConfig config_;
  util::Rng rng_;
  std::vector<double> node_targets_;
  std::vector<double> burst_until_;  // sim time at which a node's burst ends
  sim::EventHandle tick_;
  bool running_ = false;
};

}  // namespace pragma::grid
