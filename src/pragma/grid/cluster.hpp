// Cluster topology: a set of nodes attached to a central switch.
//
// This models both testbeds in the paper — the NPACI IBM SP2 (Blue Horizon)
// partition used for the Table 4 experiments and the 32-node fast-Ethernet
// Linux cluster used for Table 5 — by varying node/link specifications and
// the heterogeneity spread.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pragma/grid/link.hpp"
#include "pragma/grid/node.hpp"
#include "pragma/util/rng.hpp"

namespace pragma::grid {

/// Switch fabric model: a per-message forwarding overhead.
struct SwitchSpec {
  double forwarding_latency_s = 20e-6;
};

/// A star-topology cluster: node[i] connects to the switch via link[i].
/// Federated ("grid") configurations group nodes into sites; transfers
/// between sites additionally traverse a shared WAN link.
class Cluster {
 public:
  Cluster() = default;
  Cluster(std::vector<Node> nodes, std::vector<Link> links, SwitchSpec fabric);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Attach a WAN link used by all inter-site transfers.
  void set_wan(Link wan) {
    wan_ = wan;
    has_wan_ = true;
  }
  [[nodiscard]] bool federated() const { return has_wan_; }
  [[nodiscard]] Link& wan() { return wan_; }
  [[nodiscard]] const Link& wan() const { return wan_; }
  /// Site of a node (0 when not federated).
  [[nodiscard]] int site_of(NodeId id) const {
    return nodes_.at(id).spec().site;
  }
  [[nodiscard]] bool same_site(NodeId a, NodeId b) const {
    return site_of(a) == site_of(b);
  }

  [[nodiscard]] Node& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] Link& uplink(NodeId id) { return links_.at(id); }
  [[nodiscard]] const Link& uplink(NodeId id) const { return links_.at(id); }
  [[nodiscard]] const SwitchSpec& fabric() const { return fabric_; }

  [[nodiscard]] std::vector<Node>& nodes() { return nodes_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Seconds to transfer `bytes` from `src` to `dst` (two links + switch).
  /// Transfers to self are free.
  [[nodiscard]] double transfer_time(NodeId src, NodeId dst,
                                     double bytes) const;

  /// Bottleneck application-visible bandwidth between two nodes (bytes/s).
  [[nodiscard]] double path_bandwidth(NodeId src, NodeId dst) const;

  /// Sum of effective node speeds (Gflop/s) over nodes that are up.
  [[nodiscard]] double total_effective_gflops() const;

  /// Number of nodes currently up.
  [[nodiscard]] std::size_t up_count() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  SwitchSpec fabric_;
  Link wan_;
  bool has_wan_ = false;
};

/// Convenience builders for the two experimental testbeds.
class ClusterBuilder {
 public:
  /// Homogeneous cluster: `n` identical nodes.  Defaults approximate one
  /// Blue Horizon POWER3 node (per-CPU) with a high-speed interconnect.
  static Cluster homogeneous(std::size_t n, double peak_gflops = 1.5,
                             double memory_mib = 1024.0,
                             double bandwidth_mbps = 1000.0,
                             double latency_s = 20e-6,
                             const std::string& arch = "sp2");

  /// Heterogeneous commodity cluster: node speeds and memories drawn
  /// log-normally around the base values with the given coefficient of
  /// variation (spread).  Models the paper's Linux workstation cluster.
  static Cluster heterogeneous(std::size_t n, util::Rng& rng,
                               double base_gflops = 0.5,
                               double memory_mib = 512.0,
                               double bandwidth_mbps = 100.0,
                               double latency_s = 150e-6,
                               double spread = 0.35,
                               const std::string& arch = "linux-cluster");

  /// Federated grid: `sites` homogeneous clusters of `nodes_per_site`
  /// nodes each, joined by a shared WAN link (default: 20 Mb/s with 30 ms
  /// latency — a wide-area path of the paper's era).  Node i belongs to
  /// site i / nodes_per_site.
  static Cluster federated(std::size_t sites, std::size_t nodes_per_site,
                           double peak_gflops = 1.0,
                           double lan_bandwidth_mbps = 1000.0,
                           double wan_bandwidth_mbps = 20.0,
                           double wan_latency_s = 30e-3);
};

}  // namespace pragma::grid
