#include "pragma/octant/octant.hpp"

#include <stdexcept>

namespace pragma::octant {

std::string to_string(Octant octant) {
  switch (octant) {
    case Octant::kI:
      return "I";
    case Octant::kII:
      return "II";
    case Octant::kIII:
      return "III";
    case Octant::kIV:
      return "IV";
    case Octant::kV:
      return "V";
    case Octant::kVI:
      return "VI";
    case Octant::kVII:
      return "VII";
    case Octant::kVIII:
      return "VIII";
  }
  return "?";
}

Octant octant_from_bits(bool scattered, bool dynamic, bool communication) {
  // See the numbering table in the header.
  if (dynamic) {
    if (communication) return scattered ? Octant::kII : Octant::kI;
    return scattered ? Octant::kIV : Octant::kIII;
  }
  if (communication) return scattered ? Octant::kVI : Octant::kV;
  return scattered ? Octant::kVIII : Octant::kVII;
}

OctantBits bits_of(Octant octant) {
  switch (octant) {
    case Octant::kI:
      return {false, true, true};
    case Octant::kII:
      return {true, true, true};
    case Octant::kIII:
      return {false, true, false};
    case Octant::kIV:
      return {true, true, false};
    case Octant::kV:
      return {false, false, true};
    case Octant::kVI:
      return {true, false, true};
    case Octant::kVII:
      return {false, false, false};
    case Octant::kVIII:
      return {true, false, false};
  }
  return {};
}

OctantState OctantClassifier::classify(const amr::AdaptationTrace& trace,
                                       std::size_t i) const {
  if (i >= trace.size())
    throw std::out_of_range("OctantClassifier::classify: bad index");
  OctantState state;
  state.scatter_score = trace.scatter(i);

  // Dynamics: mean churn over the trailing window (snapshot 0 inherits the
  // churn of snapshot 1 if available so the very first classification is
  // not artificially "static").
  double churn_sum = 0.0;
  int churn_count = 0;
  const int window = thresholds_.dynamics_window;
  for (int k = 0; k < window; ++k) {
    if (i < static_cast<std::size_t>(k)) break;
    const std::size_t j = i - static_cast<std::size_t>(k);
    if (j == 0) continue;
    churn_sum += trace.churn(j);
    ++churn_count;
  }
  if (churn_count == 0 && trace.size() > 1) {
    churn_sum = trace.churn(1);
    churn_count = 1;
  }
  state.dynamics_score =
      churn_count > 0 ? churn_sum / static_cast<double>(churn_count) : 0.0;

  state.comm_score = trace.comm_comp_ratio(i);

  state.scattered = state.scatter_score >= thresholds_.scatter;
  state.dynamic = state.dynamics_score >= thresholds_.dynamics;
  state.communication = state.comm_score >= thresholds_.communication;
  return state;
}

std::vector<OctantState> OctantClassifier::classify_all(
    const amr::AdaptationTrace& trace) const {
  std::vector<OctantState> states;
  states.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    states.push_back(classify(trace, i));
  return states;
}

TransitionMatrix transition_matrix(const OctantClassifier& classifier,
                                   const amr::AdaptationTrace& trace) {
  TransitionMatrix matrix{};
  Octant previous = Octant::kI;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Octant current = classifier.classify(trace, i).octant();
    if (i > 0)
      ++matrix[static_cast<std::size_t>(previous) - 1]
              [static_cast<std::size_t>(current) - 1];
    previous = current;
  }
  return matrix;
}

const std::vector<std::string>& recommended_partitioners(Octant octant) {
  // Table 2 of the paper, verbatim ("ISP" appears only in IV and VIII).
  static const std::vector<std::string> kI_{"pBD-ISP", "G-MISP+SP"};
  static const std::vector<std::string> kII_{"pBD-ISP"};
  static const std::vector<std::string> kIII_{"G-MISP+SP", "SP-ISP"};
  static const std::vector<std::string> kIV_{"G-MISP+SP", "SP-ISP", "ISP"};
  static const std::vector<std::string> kV_{"pBD-ISP"};
  static const std::vector<std::string> kVI_{"pBD-ISP"};
  static const std::vector<std::string> kVII_{"G-MISP+SP"};
  static const std::vector<std::string> kVIII_{"G-MISP+SP", "ISP"};
  switch (octant) {
    case Octant::kI:
      return kI_;
    case Octant::kII:
      return kII_;
    case Octant::kIII:
      return kIII_;
    case Octant::kIV:
      return kIV_;
    case Octant::kV:
      return kV_;
    case Octant::kVI:
      return kVI_;
    case Octant::kVII:
      return kVII_;
    case Octant::kVIII:
      return kVIII_;
  }
  return kI_;
}

std::string select_partitioner(Octant octant) {
  return recommended_partitioners(octant).front();
}

}  // namespace pragma::octant
