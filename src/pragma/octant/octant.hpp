// The octant approach for characterizing SAMR application state (Fig. 2).
//
// Application state is classified along three binary axes:
//   (a) adaptation pattern — localized vs scattered,
//   (b) activity dynamics  — lower vs higher (how fast adaptation changes),
//   (c) runtime dominance  — computation vs communication.
//
// Octant numbering (our canonical assignment; the paper's figure is a cube
// sketch that does not pin the numbering unambiguously, so we fix the one
// that makes Table 2 self-consistent with the partitioner properties the
// paper states in Section 4.5 — pBD-ISP for communication-dominated and
// high-dynamics states, G-MISP+SP/SP-ISP/ISP for computation-dominated
// load-balance-critical states):
//
//   octant   adaptation  dynamics  dominance
//   I        localized   higher    communication
//   II       scattered   higher    communication
//   III      localized   higher    computation
//   IV       scattered   higher    computation
//   V        localized   lower     communication
//   VI       scattered   lower     communication
//   VII      localized   lower     computation
//   VIII     scattered   lower     computation
#pragma once

#include <array>
#include <string>
#include <vector>

#include "pragma/amr/trace.hpp"

namespace pragma::octant {

enum class Octant {
  kI = 1,
  kII = 2,
  kIII = 3,
  kIV = 4,
  kV = 5,
  kVI = 6,
  kVII = 7,
  kVIII = 8,
};

[[nodiscard]] std::string to_string(Octant octant);

/// Octant from the three axis bits.
[[nodiscard]] Octant octant_from_bits(bool scattered, bool dynamic,
                                      bool communication);

/// The three bits of an octant (inverse of octant_from_bits).
struct OctantBits {
  bool scattered = false;
  bool dynamic = false;
  bool communication = false;
};
[[nodiscard]] OctantBits bits_of(Octant octant);

/// Classification result: the continuous scores and the thresholded state.
struct OctantState {
  double scatter_score = 0.0;   ///< [0, 1]; high = scattered
  double dynamics_score = 0.0;  ///< churn; high = rapidly changing
  double comm_score = 0.0;      ///< structural comm/comp ratio
  bool scattered = false;
  bool dynamic = false;
  bool communication = false;
  [[nodiscard]] Octant octant() const {
    return octant_from_bits(scattered, dynamic, communication);
  }
};

struct OctantThresholds {
  double scatter = 0.55;
  double dynamics = 0.25;
  double communication = 1.45;
  /// Churn is averaged over this many trailing snapshots.
  int dynamics_window = 3;
};

/// Classifies trace snapshots into octants.
class OctantClassifier {
 public:
  explicit OctantClassifier(OctantThresholds thresholds = {})
      : thresholds_(thresholds) {}

  [[nodiscard]] const OctantThresholds& thresholds() const {
    return thresholds_;
  }

  /// Classify snapshot `i` of `trace` (uses trailing snapshots for the
  /// dynamics axis).
  [[nodiscard]] OctantState classify(const amr::AdaptationTrace& trace,
                                     std::size_t i) const;

  /// Classify every snapshot.
  [[nodiscard]] std::vector<OctantState> classify_all(
      const amr::AdaptationTrace& trace) const;

 private:
  OctantThresholds thresholds_;
};

/// Octant-to-octant transition counts over a classified trace:
/// matrix[from][to] with octants mapped to indices 0..7 (octant I = 0).
/// "Applications may start in one octant, then, as solution progresses,
/// migrate to others" — the matrix quantifies that migration.
using TransitionMatrix = std::array<std::array<int, 8>, 8>;
[[nodiscard]] TransitionMatrix transition_matrix(
    const OctantClassifier& classifier, const amr::AdaptationTrace& trace);

/// Table 2: recommended partitioners per octant, best first.
[[nodiscard]] const std::vector<std::string>& recommended_partitioners(
    Octant octant);

/// The single partitioner the meta-partitioner selects for an octant (the
/// head of the Table 2 list).
[[nodiscard]] std::string select_partitioner(Octant octant);

}  // namespace pragma::octant
