// Binary codecs for AMR state inside checkpoint payloads.
//
// The checkpoint payload needs the grid hierarchy and the adaptation
// trace in a compact, deterministic form.  These codecs mirror the text
// trace format (config, then per-snapshot levels of boxes) but are
// binary, and share the same TraceLimits validation caps: a decoded
// count is checked against both its cap and the remaining buffer before
// anything is allocated.
#pragma once

#include "pragma/amr/hierarchy.hpp"
#include "pragma/amr/trace.hpp"
#include "pragma/io/serial.hpp"
#include "pragma/util/status.hpp"

namespace pragma::io {

/// Encode/decode one hierarchy (configuration + all levels' boxes).
void encode_hierarchy(ByteWriter& writer, const amr::GridHierarchy& h);
[[nodiscard]] util::Expected<amr::GridHierarchy> decode_hierarchy(
    ByteReader& reader);

/// Encode/decode a whole adaptation trace.
void encode_trace(ByteWriter& writer, const amr::AdaptationTrace& trace);
[[nodiscard]] util::Expected<amr::AdaptationTrace> decode_trace(
    ByteReader& reader);

}  // namespace pragma::io
