// Durable, crash-consistent checkpoint files.
//
// The paper's CA actuators can "save component execution state"; this is
// the layer that makes that actuator real.  A checkpoint is an opaque
// payload wrapped in a fixed 32-byte envelope:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     8  magic "PRGMCKP1"
//        8     4  format version (little-endian u32, currently 1)
//       12     4  flags (reserved, must be zero)
//       16     8  payload size in bytes (u64)
//       24     4  CRC-32 of the payload (IEEE)
//       28     4  CRC-32 of bytes [0, 28) — seals the header itself
//       32     …  payload
//
// A file is accepted only when *every* check passes: size, magic, header
// CRC, version, declared-vs-actual payload size, payload CRC.  Torn
// writes (short file), bit-flips (either CRC) and future versions are all
// detected before a byte of payload is interpreted.
//
// CheckpointStore manages a directory of numbered generations
// (ckpt-00000001.pragma, ckpt-00000002.pragma, …) written via the
// classic crash-consistent sequence: write to a ".tmp" name, fsync the
// file, rename() into place, fsync the directory.  A crash mid-write
// leaves only a ".tmp" orphan which the loader never reads;
// load_latest_valid() walks generations newest-first and returns the
// first one that validates, so a corrupted newest generation falls back
// to its predecessor instead of taking the run down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pragma/util/status.hpp"

namespace pragma::io {

/// Envelope constants, exposed for tests and fuzzers.
inline constexpr char kCheckpointMagic[8] = {'P', 'R', 'G', 'M',
                                             'C', 'K', 'P', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 32;
/// Default cap on accepted payload size: a hostile header cannot make the
/// loader allocate more than this.
inline constexpr std::uint64_t kDefaultMaxPayloadBytes = 64ull << 20;

/// fsync a descriptor / a directory with a bounded, descriptive error —
/// the crash-consistency primitives shared by CheckpointStore and the
/// service run journal.
util::Status fsync_fd(int fd, const std::string& what);
util::Status fsync_dir(const std::string& dir);

/// Wrap `payload` in the checkpoint envelope.
[[nodiscard]] std::vector<std::uint8_t> encode_envelope(
    const std::vector<std::uint8_t>& payload);

/// Validate `bytes` and extract the payload.  Pure function over memory —
/// the fuzzer entry point for the checkpoint loader.
[[nodiscard]] util::Expected<std::vector<std::uint8_t>> decode_envelope(
    const std::uint8_t* bytes, std::size_t size,
    std::uint64_t max_payload_bytes = kDefaultMaxPayloadBytes);
[[nodiscard]] util::Expected<std::vector<std::uint8_t>> decode_envelope(
    const std::vector<std::uint8_t>& bytes,
    std::uint64_t max_payload_bytes = kDefaultMaxPayloadBytes);

struct CheckpointStoreOptions {
  std::string dir;
  /// Retention window: generations kept on disk; older ones are garbage-
  /// collected after a successful write (or an explicit gc() call).
  /// Minimum 1; keep ≥ 2 so a corrupted newest generation still has a
  /// fallback.  GC never deletes the newest generation that validates,
  /// even when it falls outside the window.
  int keep_last_n = 2;
  std::uint64_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

/// A loaded checkpoint: which generation it came from plus its payload.
struct LoadedCheckpoint {
  std::uint64_t generation = 0;
  std::vector<std::uint8_t> payload;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(CheckpointStoreOptions options);

  /// Durably write `payload` as the next generation (tmp + fsync + rename
  /// + directory fsync).  On success gc() trims generations beyond
  /// keep_last_n.
  util::Status write(const std::vector<std::uint8_t>& payload);

  /// Trim the directory to the keep_last_n retention window, oldest
  /// first.  The newest generation that passes full validation is always
  /// retained — GC can never delete the latest recoverable state, no
  /// matter how the window is set or how many newer torn/corrupt files
  /// exist.  Best-effort (a failed unlink only wastes disk); returns the
  /// number of files removed.
  int gc();

  /// Newest generation that passes full validation.  Generations that
  /// fail are logged and skipped (and reported via `rejected` when
  /// non-null); kNotFound when none validates.
  [[nodiscard]] util::Expected<LoadedCheckpoint> load_latest_valid(
      int* rejected = nullptr) const;

  /// Read + validate one specific generation.
  [[nodiscard]] util::Expected<LoadedCheckpoint> load_generation(
      std::uint64_t generation) const;

  /// Generations present on disk (validated or not), ascending.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  /// Next generation number a write() would use.
  [[nodiscard]] std::uint64_t next_generation() const;

  [[nodiscard]] std::string path_for(std::uint64_t generation) const;
  [[nodiscard]] const CheckpointStoreOptions& options() const {
    return options_;
  }

 private:
  util::Status write_impl(const std::vector<std::uint8_t>& payload);

  CheckpointStoreOptions options_;
};

}  // namespace pragma::io
