// Bounded binary (de)serialization for snapshot payloads.
//
// ByteWriter appends fixed-width little-endian fields to a growable
// buffer; ByteReader walks untrusted bytes and *never* trusts a length it
// just read: every size-prefixed read is validated against the remaining
// buffer before a single byte is allocated, so a hostile 8-byte header
// cannot demand a multi-gigabyte vector.  The reader is sticky-error: the
// first failure latches a Status, every later read returns the zero value,
// and callers check status() once at the end instead of after each field.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pragma/util/status.hpp"

namespace pragma::io {

class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(value); }
  void u32(std::uint32_t value) { append(&value, sizeof value); }
  void u64(std::uint64_t value) { append(&value, sizeof value); }
  void i32(std::int32_t value) { append(&value, sizeof value); }
  void i64(std::int64_t value) { append(&value, sizeof value); }
  void f64(double value) { append(&value, sizeof value); }

  /// Size-prefixed string (u32 length + raw bytes).
  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    append(value.data(), value.size());
  }

  void raw(const void* data, std::size_t size) { append(data, size); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  void append(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  /// Longest string any snapshot field may carry (partitioner names,
  /// octant labels).  Longer prefixes are rejected as malformed.
  static constexpr std::uint32_t kMaxStringBytes = 4096;

  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    std::uint8_t v = 0;
    extract(&v, sizeof v, "u8");
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    extract(&v, sizeof v, "u32");
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    extract(&v, sizeof v, "u64");
    return v;
  }
  [[nodiscard]] std::int32_t i32() {
    std::int32_t v = 0;
    extract(&v, sizeof v, "i32");
    return v;
  }
  [[nodiscard]] std::int64_t i64() {
    std::int64_t v = 0;
    extract(&v, sizeof v, "i64");
    return v;
  }
  [[nodiscard]] double f64() {
    double v = 0.0;
    extract(&v, sizeof v, "f64");
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t length = u32();
    if (!ok()) return {};
    if (length > kMaxStringBytes) {
      fail("string length " + std::to_string(length) + " exceeds cap");
      return {};
    }
    if (length > remaining()) {
      fail("string overruns buffer");
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return out;
  }

  /// Read a u32 element count for a sequence whose elements occupy at
  /// least `min_element_bytes` each.  Rejects counts that could not
  /// possibly fit in the remaining buffer — the guard that makes hostile
  /// "count = 2^31" headers cheap to reject.
  [[nodiscard]] std::uint32_t count(std::size_t min_element_bytes,
                                    std::uint32_t cap) {
    const std::uint32_t n = u32();
    if (!ok()) return 0;
    if (n > cap) {
      fail("element count " + std::to_string(n) + " exceeds cap " +
           std::to_string(cap));
      return 0;
    }
    if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
      fail("element count " + std::to_string(n) + " overruns buffer");
      return 0;
    }
    return n;
  }

  /// Latch an application-level validation failure.
  void fail(std::string message) {
    if (status_.is_ok())
      status_ = util::Status::invalid(std::move(message));
  }

  [[nodiscard]] bool ok() const { return status_.is_ok(); }
  [[nodiscard]] const util::Status& status() const { return status_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }

 private:
  void extract(void* out, std::size_t size, const char* what) {
    if (!ok()) return;
    if (size > remaining()) {
      fail(std::string("truncated ") + what + " at offset " +
           std::to_string(pos_));
      return;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  util::Status status_;
};

}  // namespace pragma::io
