#include "pragma/io/snapshot.hpp"

#include "pragma/amr/trace_io.hpp"

namespace pragma::io {

namespace {

using amr::TraceLimits;

/// Per-box wire size: six i32 coordinates.
constexpr std::size_t kBoxBytes = 6 * sizeof(std::int32_t);

void encode_levels(ByteWriter& writer, const amr::GridHierarchy& h) {
  writer.u32(static_cast<std::uint32_t>(h.num_levels()));
  // Level 0 is implicit (the full domain), as in the text format.
  for (int l = 1; l < h.num_levels(); ++l) {
    const auto& boxes = h.level(l).boxes;
    writer.u32(static_cast<std::uint32_t>(boxes.size()));
    for (const amr::Box& box : boxes) {
      writer.i32(box.lo().x);
      writer.i32(box.lo().y);
      writer.i32(box.lo().z);
      writer.i32(box.hi().x);
      writer.i32(box.hi().y);
      writer.i32(box.hi().z);
    }
  }
}

util::Status decode_levels(ByteReader& reader, amr::GridHierarchy& h) {
  const std::uint32_t num_levels =
      reader.count(0, static_cast<std::uint32_t>(h.max_levels()));
  if (!reader.ok()) return reader.status();
  if (num_levels < 1)
    return util::Status::invalid("hierarchy with zero levels");
  for (std::uint32_t l = 1; l < num_levels; ++l) {
    const std::uint32_t nboxes =
        reader.count(kBoxBytes, TraceLimits::kMaxBoxesPerLevel);
    if (!reader.ok()) return reader.status();
    std::vector<amr::Box> boxes;
    boxes.reserve(nboxes);
    for (std::uint32_t b = 0; b < nboxes; ++b) {
      amr::IntVec3 lo{reader.i32(), reader.i32(), reader.i32()};
      amr::IntVec3 hi{reader.i32(), reader.i32(), reader.i32()};
      if (!reader.ok()) return reader.status();
      if (util::Status status = amr::validate_trace_box(lo, hi);
          !status.is_ok())
        return status;
      boxes.emplace_back(lo, hi);
    }
    h.set_level_boxes(static_cast<int>(l), std::move(boxes));
  }
  return util::Status::ok();
}

}  // namespace

void encode_hierarchy(ByteWriter& writer, const amr::GridHierarchy& h) {
  writer.i32(h.base_dims().x);
  writer.i32(h.base_dims().y);
  writer.i32(h.base_dims().z);
  writer.i32(h.ratio());
  writer.i32(h.max_levels());
  encode_levels(writer, h);
}

util::Expected<amr::GridHierarchy> decode_hierarchy(ByteReader& reader) {
  amr::IntVec3 base{reader.i32(), reader.i32(), reader.i32()};
  const int ratio = reader.i32();
  const int max_levels = reader.i32();
  if (!reader.ok()) return reader.status();
  if (util::Status status = amr::validate_trace_config(base, ratio,
                                                       max_levels);
      !status.is_ok())
    return status;
  amr::GridHierarchy h(base, ratio, max_levels);
  if (util::Status status = decode_levels(reader, h); !status.is_ok())
    return status;
  return h;
}

void encode_trace(ByteWriter& writer, const amr::AdaptationTrace& trace) {
  writer.u32(static_cast<std::uint32_t>(trace.size()));
  if (trace.empty()) return;
  // The shared configuration is stored once (save_trace enforces that all
  // snapshots agree on it).
  const amr::GridHierarchy& first = trace.at(0).hierarchy;
  writer.i32(first.base_dims().x);
  writer.i32(first.base_dims().y);
  writer.i32(first.base_dims().z);
  writer.i32(first.ratio());
  writer.i32(first.max_levels());
  for (const amr::Snapshot& snapshot : trace.snapshots()) {
    writer.i32(snapshot.step);
    encode_levels(writer, snapshot.hierarchy);
  }
}

util::Expected<amr::AdaptationTrace> decode_trace(ByteReader& reader) {
  const std::uint32_t count =
      reader.count(sizeof(std::int32_t), TraceLimits::kMaxSnapshots);
  if (!reader.ok()) return reader.status();
  amr::AdaptationTrace trace;
  if (count == 0) return trace;
  amr::IntVec3 base{reader.i32(), reader.i32(), reader.i32()};
  const int ratio = reader.i32();
  const int max_levels = reader.i32();
  if (!reader.ok()) return reader.status();
  if (util::Status status = amr::validate_trace_config(base, ratio,
                                                       max_levels);
      !status.is_ok())
    return status;
  for (std::uint32_t i = 0; i < count; ++i) {
    const int step = reader.i32();
    if (!reader.ok()) return reader.status();
    amr::GridHierarchy h(base, ratio, max_levels);
    if (util::Status status = decode_levels(reader, h); !status.is_ok())
      return status;
    trace.add(amr::Snapshot{step, std::move(h)});
  }
  return trace;
}

}  // namespace pragma::io
