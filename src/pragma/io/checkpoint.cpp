#include "pragma/io/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "pragma/obs/metrics.hpp"
#include "pragma/obs/tracer.hpp"
#include "pragma/util/crc32.hpp"
#include "pragma/util/logging.hpp"

namespace pragma::io {

namespace {
obs::Counter& checkpoint_writes_counter() {
  static obs::Counter& counter = obs::metrics().counter("io.checkpoint.writes");
  return counter;
}
obs::Counter& checkpoint_write_failures_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("io.checkpoint.write_failures");
  return counter;
}
obs::Counter& checkpoint_gc_counter() {
  static obs::Counter& counter =
      obs::metrics().counter("io.checkpoint.gc_removed");
  return counter;
}
obs::Histogram& checkpoint_bytes_histogram() {
  static obs::Histogram& histogram = obs::metrics().histogram(
      "io.checkpoint.bytes",
      obs::HistogramOptions::exponential(1024.0, 4.0, 12));
  return histogram;
}
}  // namespace

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".pragma";
constexpr const char* kTmpSuffix = ".tmp";

void put_u32(std::uint8_t* out, std::uint32_t value) {
  std::memcpy(out, &value, sizeof value);
}

void put_u64(std::uint8_t* out, std::uint64_t value) {
  std::memcpy(out, &value, sizeof value);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  std::memcpy(&value, in, sizeof value);
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  std::memcpy(&value, in, sizeof value);
  return value;
}

/// Parse a generation number out of "ckpt-<digits>.pragma"; 0 = not a
/// checkpoint file name.
std::uint64_t generation_of(const std::string& filename) {
  const std::size_t prefix_len = std::strlen(kPrefix);
  const std::size_t suffix_len = std::strlen(kSuffix);
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) !=
      0)
    return 0;
  std::uint64_t generation = 0;
  for (std::size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return 0;
    if (generation > (UINT64_MAX - 9) / 10) return 0;
    generation = generation * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return generation;
}

}  // namespace

util::Status fsync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0)
    return util::Status::internal("fsync failed for " + what + ": " +
                                  std::strerror(errno));
  return util::Status::ok();
}

util::Status fsync_dir(const std::string& dir) {
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) return util::Status::ok();  // e.g. network fs without dirs
  const util::Status status = fsync_fd(dir_fd, dir);
  ::close(dir_fd);
  return status;
}

std::vector<std::uint8_t> encode_envelope(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(kCheckpointHeaderBytes + payload.size());
  std::memcpy(out.data(), kCheckpointMagic, sizeof kCheckpointMagic);
  put_u32(out.data() + 8, kCheckpointVersion);
  put_u32(out.data() + 12, 0);  // flags
  put_u64(out.data() + 16, payload.size());
  put_u32(out.data() + 24, util::crc32(payload.data(), payload.size()));
  put_u32(out.data() + 28, util::crc32(out.data(), 28));
  std::memcpy(out.data() + kCheckpointHeaderBytes, payload.data(),
              payload.size());
  return out;
}

util::Expected<std::vector<std::uint8_t>> decode_envelope(
    const std::uint8_t* bytes, std::size_t size,
    std::uint64_t max_payload_bytes) {
  if (size < kCheckpointHeaderBytes)
    return util::Status::data_loss(
        "checkpoint shorter than its 32-byte header (" +
        std::to_string(size) + " bytes)");
  if (std::memcmp(bytes, kCheckpointMagic, sizeof kCheckpointMagic) != 0)
    return util::Status::invalid("bad checkpoint magic");
  const std::uint32_t header_crc = get_u32(bytes + 28);
  if (util::crc32(bytes, 28) != header_crc)
    return util::Status::data_loss("checkpoint header CRC mismatch");
  const std::uint32_t version = get_u32(bytes + 8);
  if (version != kCheckpointVersion)
    return util::Status::unimplemented("checkpoint format version " +
                                       std::to_string(version));
  if (get_u32(bytes + 12) != 0)
    return util::Status::invalid("nonzero reserved checkpoint flags");
  const std::uint64_t declared = get_u64(bytes + 16);
  if (declared > max_payload_bytes)
    return util::Status::out_of_range(
        "declared payload of " + std::to_string(declared) +
        " bytes exceeds cap of " + std::to_string(max_payload_bytes));
  if (declared != size - kCheckpointHeaderBytes)
    return util::Status::data_loss(
        "declared payload size " + std::to_string(declared) +
        " does not match file contents (" +
        std::to_string(size - kCheckpointHeaderBytes) + " bytes) — torn write");
  const std::uint8_t* payload = bytes + kCheckpointHeaderBytes;
  if (util::crc32(payload, declared) != get_u32(bytes + 24))
    return util::Status::data_loss("checkpoint payload CRC mismatch");
  return std::vector<std::uint8_t>(payload, payload + declared);
}

util::Expected<std::vector<std::uint8_t>> decode_envelope(
    const std::vector<std::uint8_t>& bytes,
    std::uint64_t max_payload_bytes) {
  return decode_envelope(bytes.data(), bytes.size(), max_payload_bytes);
}

CheckpointStore::CheckpointStore(CheckpointStoreOptions options)
    : options_(std::move(options)) {
  if (options_.keep_last_n < 1) options_.keep_last_n = 1;
}

std::string CheckpointStore::path_for(std::uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof name, "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return (fs::path(options_.dir) / name).string();
}

std::vector<std::uint64_t> CheckpointStore::generations() const {
  std::vector<std::uint64_t> result;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t generation =
        generation_of(entry.path().filename().string());
    if (generation > 0) result.push_back(generation);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t CheckpointStore::next_generation() const {
  const std::vector<std::uint64_t> existing = generations();
  return existing.empty() ? 1 : existing.back() + 1;
}

util::Status CheckpointStore::write(
    const std::vector<std::uint8_t>& payload) {
  PRAGMA_SPAN_VAR(span, "io", "CheckpointStore.write");
  span.annotate("payload_bytes", payload.size());
  const util::Status status = write_impl(payload);
  if (status.is_ok()) {
    checkpoint_writes_counter().add();
    checkpoint_bytes_histogram().observe(static_cast<double>(payload.size()));
  } else {
    checkpoint_write_failures_counter().add();
    span.annotate("error", status.to_string());
  }
  return status;
}

util::Status CheckpointStore::write_impl(
    const std::vector<std::uint8_t>& payload) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec)
    return util::Status::internal("cannot create checkpoint dir " +
                                  options_.dir + ": " + ec.message());

  const std::vector<std::uint8_t> file = encode_envelope(payload);
  const std::uint64_t generation = next_generation();
  const std::string final_path = path_for(generation);
  const std::string tmp_path = final_path + kTmpSuffix;

  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    return util::Status::internal("cannot open " + tmp_path + ": " +
                                  std::strerror(errno));
  std::size_t written = 0;
  while (written < file.size()) {
    const ssize_t n =
        ::write(fd, file.data() + written, file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const util::Status status = util::Status::internal(
          "write failed for " + tmp_path + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  if (util::Status status = fsync_fd(fd, tmp_path); !status.is_ok()) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);

  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const util::Status status = util::Status::internal(
        "rename to " + final_path + " failed: " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return status;
  }

  // Make the rename itself durable.
  if (util::Status status = fsync_dir(options_.dir); !status.is_ok())
    return status;

  // Trim to the retention window.  The generation just written is the
  // newest valid one, so gc() can never touch it.
  gc();
  return util::Status::ok();
}

int CheckpointStore::gc() {
  const std::vector<std::uint64_t> existing = generations();
  const auto keep = static_cast<std::size_t>(options_.keep_last_n);
  if (existing.size() <= keep) return 0;

  // The latest recoverable state is sacrosanct: find the newest
  // generation that passes full validation (torn or bit-flipped newer
  // files do not count) and exempt it from the sweep.
  std::uint64_t newest_valid = 0;
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    if (load_generation(*it)) {
      newest_valid = *it;
      break;
    }
  }

  int removed = 0;
  std::size_t excess = existing.size() - keep;
  for (std::size_t i = 0; i < existing.size() && excess > 0; ++i) {
    if (existing[i] == newest_valid) continue;
    if (::unlink(path_for(existing[i]).c_str()) == 0) ++removed;
    --excess;
  }
  if (removed > 0) checkpoint_gc_counter().add(static_cast<std::uint64_t>(removed));
  return removed;
}

util::Expected<LoadedCheckpoint> CheckpointStore::load_generation(
    std::uint64_t generation) const {
  PRAGMA_SPAN_VAR(span, "io", "CheckpointStore.load_generation");
  span.annotate("generation", generation);
  const std::string path = path_for(generation);
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return util::Status::not_found("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec)
      return util::Status::internal("cannot stat " + path + ": " +
                                    ec.message());
    // Reject oversized files before reading them into memory.
    if (size > options_.max_payload_bytes + kCheckpointHeaderBytes)
      return util::Status::out_of_range(
          path + " is " + std::to_string(size) + " bytes, above the cap");
    bytes.resize(static_cast<std::size_t>(size));
  }
  if (!bytes.empty() &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size())))
    return util::Status::internal("short read from " + path);
  util::Expected<std::vector<std::uint8_t>> payload =
      decode_envelope(bytes, options_.max_payload_bytes);
  if (!payload) return payload.status();
  return LoadedCheckpoint{generation, std::move(payload).value()};
}

util::Expected<LoadedCheckpoint> CheckpointStore::load_latest_valid(
    int* rejected) const {
  if (rejected) *rejected = 0;
  std::vector<std::uint64_t> existing = generations();
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    util::Expected<LoadedCheckpoint> loaded = load_generation(*it);
    if (loaded) return loaded;
    if (rejected) ++*rejected;
    util::log_warn("checkpoint generation ", *it, " rejected: ",
                   loaded.status().to_string());
  }
  return util::Status::not_found("no valid checkpoint generation in " +
                                 options_.dir);
}

}  // namespace pragma::io
